package bench

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
)

func TestReferenceSmallExact(t *testing.T) {
	ins := gen.GK("ref", 12, 3, 0.25, 5)
	ref, err := ComputeReference(ins, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !ref.Optimal {
		t.Fatal("12-item instance not solved exactly")
	}
	if ref.LPBound < ref.Optimum-1e-9 {
		t.Fatalf("LP bound %v below optimum %v", ref.LPBound, ref.Optimum)
	}
	if d := ref.Deviation(ref.Optimum); d != 0 {
		t.Fatalf("deviation at optimum = %v", d)
	}
	if d := ref.Deviation(ref.Optimum / 2); d <= 0 {
		t.Fatalf("deviation of half-optimum = %v", d)
	}
	if d := ref.Deviation(ref.Optimum * 2); d != 0 {
		t.Fatalf("deviation clamps at 0, got %v", d)
	}
}

func TestReferenceNodeLimitFallsBack(t *testing.T) {
	ins := gen.GK("hard", 80, 10, 0.25, 6)
	ref, err := ComputeReference(ins, 10) // absurdly small budget
	if err != nil {
		t.Fatal(err)
	}
	if ref.Optimal {
		t.Fatal("claimed optimality under a 10-node budget")
	}
	if ref.BestKnown() != ref.LPBound {
		t.Fatal("fallback reference is not the LP bound")
	}
}

func TestReferenceDisabledExact(t *testing.T) {
	ins := gen.GK("noexact", 20, 3, 0.25, 7)
	ref, err := ComputeReference(ins, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Optimal || ref.LPBound <= 0 {
		t.Fatalf("unexpected reference %+v", ref)
	}
}

// smallTable1 returns a fast Table 1 config for tests.
func TestTable1SmallRun(t *testing.T) {
	if testing.Short() {
		t.Skip("table 1 run in -short mode")
	}
	rows, err := Table1(Table1Config{
		Seed: 1, P: 2, Rounds: 2, RoundMoves: 150, ExactNodeLimit: 200_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	groups := gen.GKGroups()
	if len(rows) != len(groups) {
		t.Fatalf("got %d rows, want %d", len(rows), len(groups))
	}
	for i, r := range rows {
		if r.Label != groups[i].Label || r.Problems != groups[i].Count {
			t.Fatalf("row %d mismatch: %+v vs %+v", i, r, groups[i])
		}
		if r.AvgDev < 0 || r.MaxDev < r.AvgDev {
			t.Fatalf("row %d has inconsistent deviations: %+v", i, r)
		}
		if r.MaxTime <= 0 {
			t.Fatalf("row %d has zero time", i)
		}
	}
	// The smallest group must be solved to proven optimality.
	if rows[0].Proven != rows[0].Problems {
		t.Fatalf("3*10 group has %d/%d proven optima", rows[0].Proven, rows[0].Problems)
	}
	if rows[0].Optima == 0 {
		t.Fatal("CTS2 hit no optima on the 3*10 group")
	}
	out := RenderTable1(rows)
	if !strings.Contains(out, "1to4") || !strings.Contains(out, "25*500") {
		t.Fatalf("rendered table missing rows:\n%s", out)
	}
}

func TestTable2SmallRun(t *testing.T) {
	if testing.Short() {
		t.Skip("table 2 run in -short mode")
	}
	rows, err := Table2(Table2Config{Seed: 2, P: 2, Rounds: 2, RoundMoves: 120, Seeds: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("got %d rows, want 5", len(rows))
	}
	for _, r := range rows {
		for _, a := range Algorithms {
			if r.Value[a].Mean <= 0 || r.Value[a].N != 2 {
				t.Fatalf("%s/%v has summary %+v", r.Problem, a, r.Value[a])
			}
			if len(r.Samples[a]) != 2 {
				t.Fatalf("%s/%v has %d samples", r.Problem, a, len(r.Samples[a]))
			}
		}
		// Parallel variants run P slaves; SEQ runs one: total moves must reflect it.
		if r.Moves[core.ITS] <= r.Moves[core.SEQ] {
			t.Fatalf("%s: ITS moves %d not above SEQ moves %d", r.Problem, r.Moves[core.ITS], r.Moves[core.SEQ])
		}
	}
	out := RenderTable2(rows)
	for _, want := range []string{"MK1", "MK5", "SEQ", "CTS2", "Winner"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestFPReportSubset(t *testing.T) {
	if testing.Short() {
		t.Skip("FP run in -short mode")
	}
	sum, err := FPReport(FPConfig{
		Seed: 42, P: 2, Rounds: 8, RoundMoves: 400,
		ExactNodeLimit: 2_000_000, Limit: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Rows) != 8 {
		t.Fatalf("got %d rows, want 8", len(sum.Rows))
	}
	if sum.Proven == 0 {
		t.Fatal("no certified optima among the 8 smallest FP problems")
	}
	if sum.Hits < sum.Proven-1 {
		t.Fatalf("too many misses: %d hits of %d proven", sum.Hits, sum.Proven)
	}
	out := RenderFP(sum)
	if !strings.Contains(out, "problems") {
		t.Fatalf("render broken:\n%s", out)
	}
}

func TestAblationAlphaShape(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation in -short mode")
	}
	rows, err := AblationAlpha(AblationConfig{Seed: 3, P: 2, Rounds: 2, RoundMoves: 100, Seeds: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("got %d alpha rows", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Alpha <= rows[i-1].Alpha {
			t.Fatal("alpha sweep not increasing")
		}
	}
	if out := RenderAlpha(rows); !strings.Contains(out, "alpha") {
		t.Fatal("render broken")
	}
}

func TestAblationTuningShape(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation in -short mode")
	}
	rows, err := AblationTuning(AblationConfig{Seed: 4, P: 2, Rounds: 3, RoundMoves: 100, Seeds: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d tuning rows", len(rows))
	}
	for _, r := range rows {
		if r.CTS1 <= 0 || r.CTS2 <= 0 {
			t.Fatalf("zero values in %+v", r)
		}
	}
	if out := RenderTuning(rows); !strings.Contains(out, "CTS2 wins") {
		t.Fatal("render broken")
	}
}

func TestAblationScalingShape(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation in -short mode")
	}
	rows, err := AblationScaling(AblationConfig{Seed: 5, Rounds: 2, RoundMoves: 80, Seeds: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 || rows[0].P != 1 || rows[4].P != 16 {
		t.Fatalf("unexpected P ladder: %+v", rows)
	}
	// More processors must consume more total moves under the
	// fixed-wall-clock protocol.
	for i := 1; i < len(rows); i++ {
		if rows[i].TotalMoves <= rows[i-1].TotalMoves {
			t.Fatalf("moves did not grow with P: %+v", rows)
		}
	}
	if out := RenderScaling(rows); !strings.Contains(out, "P") {
		t.Fatal("render broken")
	}
}

func TestAblationStrategyShape(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation in -short mode")
	}
	rows, err := AblationStrategy(AblationConfig{Seed: 6, Rounds: 2, RoundMoves: 100, Seeds: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4*6 {
		t.Fatalf("got %d strategy rows, want 24", len(rows))
	}
	for _, r := range rows {
		if r.MeanValue <= 0 {
			t.Fatalf("zero value for %+v", r)
		}
	}
	if out := RenderStrategy(rows); !strings.Contains(out, "NbDrop") {
		t.Fatal("render broken")
	}
}
