package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/mkp"
	"repro/internal/tabu"
)

// The end-to-end solver benchmark measures solution-quality speed — how fast
// each algorithm's global best climbs, round by round, on pinned GK
// instances from fixed seeds — where the kernel suite measures micro-op
// cost. Every run is deterministic, so the exported JSON (BENCH_solver.json
// at the repo root) pins complete trajectories, not just summary numbers,
// and future PRs are judged on time-to-target, not just ns/op.
//
// The report also carries the guided-vs-unguided comparison for the paper's
// full algorithm (CTS2): the round at which each variant first reaches the
// target value, defined as the worse of the two final bests so both runs
// provably reach it. The LP-guided core search must reach the target no
// later than the unguided baseline on every pinned instance.

// SolverInstance pins one generated GK instance.
type SolverInstance struct {
	Name      string  `json:"name"`
	N         int     `json:"n"`
	M         int     `json:"m"`
	Tightness float64 `json:"tightness"`
	Seed      uint64  `json:"seed"`
}

// Instance materializes the pinned instance.
func (si SolverInstance) Instance() *mkp.Instance {
	return gen.GK(si.Name, si.N, si.M, si.Tightness, si.Seed)
}

// SolverSpec pins the whole suite: the instances and the common run shape.
type SolverSpec struct {
	P          int              `json:"p"`
	Seed       uint64           `json:"seed"`
	Rounds     int              `json:"rounds"`
	RoundMoves int64            `json:"round_moves"`
	Instances  []SolverInstance `json:"instances"`
}

// DefaultSolverSpec is the committed-baseline configuration: a fixed seed and
// budgets small enough to regenerate in well under a minute. Three of the four
// pinned shapes are m=5 at mid-to-high tightness, where reduced-cost fixing
// measurably bites once the incumbent is good (on GK instances a greedy
// incumbent fixes nothing, and m>=10 shapes fix next to nothing even with an
// excellent one — their LP gap swallows the reduced costs). The last shape is
// exactly such an m=10 control: there guidance stays inert and the guided run
// is expected to match the unguided one move for move.
func DefaultSolverSpec() SolverSpec {
	return SolverSpec{
		P: 4, Seed: 7, Rounds: 10, RoundMoves: 300,
		Instances: []SolverInstance{
			{Name: "gk-5x100-t65", N: 100, M: 5, Tightness: 0.65, Seed: 1},
			{Name: "gk-5x100-t75", N: 100, M: 5, Tightness: 0.75, Seed: 19},
			{Name: "gk-5x250-t75", N: 250, M: 5, Tightness: 0.75, Seed: 10},
			{Name: "gk-10x100-t25", N: 100, M: 10, Tightness: 0.25, Seed: 4},
		},
	}
}

// quickSolverSpec shrinks the suite for -quick runs and unit tests.
func quickSolverSpec() SolverSpec {
	sp := DefaultSolverSpec()
	sp.Rounds, sp.RoundMoves = 4, 200
	sp.Instances = sp.Instances[:2]
	return sp
}

// QuickSolverSpec exposes the reduced suite (mkpbench -quick -solverbench).
func QuickSolverSpec() SolverSpec { return quickSolverSpec() }

// SolverSeries is one run's quality trajectory.
type SolverSeries struct {
	Algorithm   string    `json:"algorithm"`
	Guided      bool      `json:"guided"`
	Final       float64   `json:"final"`
	BestByRound []float64 `json:"best_by_round"`
	TotalMoves  int64     `json:"total_moves"`
	// ElapsedMS is informational only — it depends on the host — and is
	// excluded from every comparison; the deterministic time axis is the
	// round number.
	ElapsedMS float64 `json:"elapsed_ms"`

	// Guidance fields, populated only on guided series.
	LPBound       float64 `json:"lp_bound,omitempty"`
	CoreSize      int     `json:"core_size,omitempty"`
	CoreFixedIn   int     `json:"core_fixed_in,omitempty"`
	CoreFixedOut  int     `json:"core_fixed_out,omitempty"`
	CoreRefreshes int     `json:"core_refreshes,omitempty"`
	ProvenOptimal bool    `json:"proven_optimal,omitempty"`

	// Portfolio fields, populated only on the hyper-heuristic series: the
	// member list and the final per-algorithm slot split and win accounting.
	Portfolio    string         `json:"portfolio,omitempty"`
	AlgoSlots    map[string]int `json:"algo_slots,omitempty"`
	AlgoWins     map[string]int `json:"algo_wins,omitempty"`
	AlgoRounds   map[string]int `json:"algo_rounds,omitempty"`
	SlotReallocs int            `json:"slot_reallocs,omitempty"`
}

// SolverInstanceReport is one pinned instance's trajectories plus the
// guided-vs-unguided time-to-target comparison on CTS2.
type SolverInstanceReport struct {
	Instance SolverInstance `json:"instance"`
	Series   []SolverSeries `json:"series"`

	// Target is the worse of the guided and unguided CTS2 final bests, so
	// both runs reach it within budget. GuidedRound and UnguidedRound are
	// the 1-based round at which each first reached Target; a guided run
	// whose startup fixing already proves the incumbent optimal reports
	// round 0 (reached before any search).
	Target        float64 `json:"target"`
	GuidedRound   int     `json:"guided_round"`
	UnguidedRound int     `json:"unguided_round"`

	// The hyper-heuristic comparison, same construction: PortfolioTarget is
	// the worse of the mixed-portfolio and pure-tabu CTS2 finals, and the
	// round fields are when each first reached it. The portfolio must reach
	// the pure-tabu target no later on the pinned instances.
	PortfolioTarget float64 `json:"portfolio_target"`
	PortfolioRound  int     `json:"portfolio_round"`
	PureRound       int     `json:"pure_round"`
}

// SolverReport is the exported suite result.
type SolverReport struct {
	Spec      SolverSpec             `json:"spec"`
	Instances []SolverInstanceReport `json:"instances"`
}

// solverAlgorithms is the Table 2 set every instance runs unguided.
var solverAlgorithms = []core.Algorithm{core.SEQ, core.ITS, core.CTS1, core.CTS2}

// solverPortfolio is the mixed member list the hyper-heuristic series runs:
// the paper's tabu kernel plus both auxiliary searchers.
var solverPortfolio = []tabu.AlgoID{tabu.AlgoTabu, tabu.AlgoRepair, tabu.AlgoAssim}

// RunSolverSuite executes the suite. Progress (optional) gets one line per
// completed run.
func RunSolverSuite(sp SolverSpec, progress io.Writer) (SolverReport, error) {
	rep := SolverReport{Spec: sp}
	for _, si := range sp.Instances {
		ins := si.Instance()
		ir := SolverInstanceReport{Instance: si}
		var unguided, guided *SolverSeries
		for _, algo := range solverAlgorithms {
			s, err := runSolverSeries(ins, algo, sp, false, nil)
			if err != nil {
				return rep, fmt.Errorf("bench: solver %s %v: %w", si.Name, algo, err)
			}
			ir.Series = append(ir.Series, s)
			if algo == core.CTS2 {
				unguided = &ir.Series[len(ir.Series)-1]
			}
			if progress != nil {
				fmt.Fprintf(progress, "solver %-10s %-4v final=%.0f\n", si.Name, algo, s.Final)
			}
		}
		s, err := runSolverSeries(ins, core.CTS2, sp, true, nil)
		if err != nil {
			return rep, fmt.Errorf("bench: solver %s CTS2 guided: %w", si.Name, err)
		}
		ir.Series = append(ir.Series, s)
		guided = &ir.Series[len(ir.Series)-1]
		if progress != nil {
			fmt.Fprintf(progress, "solver %-10s CTS2g final=%.0f core=%d/%d/%d\n",
				si.Name, s.Final, s.CoreFixedIn, s.CoreSize, s.CoreFixedOut)
		}
		s, err = runSolverSeries(ins, core.CTS2, sp, false, solverPortfolio)
		if err != nil {
			return rep, fmt.Errorf("bench: solver %s CTS2 portfolio: %w", si.Name, err)
		}
		ir.Series = append(ir.Series, s)
		mixed := &ir.Series[len(ir.Series)-1]
		if progress != nil {
			fmt.Fprintf(progress, "solver %-10s CTS2p final=%.0f reallocs=%d\n",
				si.Name, s.Final, s.SlotReallocs)
		}

		ir.Target = guided.Final
		if unguided.Final < ir.Target {
			ir.Target = unguided.Final
		}
		ir.GuidedRound = roundsToTarget(guided.BestByRound, ir.Target)
		ir.UnguidedRound = roundsToTarget(unguided.BestByRound, ir.Target)

		ir.PortfolioTarget = mixed.Final
		if unguided.Final < ir.PortfolioTarget {
			ir.PortfolioTarget = unguided.Final
		}
		ir.PortfolioRound = roundsToTarget(mixed.BestByRound, ir.PortfolioTarget)
		ir.PureRound = roundsToTarget(unguided.BestByRound, ir.PortfolioTarget)
		rep.Instances = append(rep.Instances, ir)
	}
	return rep, nil
}

// runSolverSeries executes one deterministic run and folds its stats into a
// series record.
func runSolverSeries(ins *mkp.Instance, algo core.Algorithm, sp SolverSpec, guide bool, portfolio []tabu.AlgoID) (SolverSeries, error) {
	opts := core.Options{P: sp.P, Seed: sp.Seed, Rounds: sp.Rounds, RoundMoves: sp.RoundMoves, Portfolio: portfolio}
	if guide {
		opts.Guide = &core.GuideConfig{}
	}
	began := time.Now()
	res, err := core.Solve(ins, algo, opts)
	if err != nil {
		return SolverSeries{}, err
	}
	s := SolverSeries{
		Algorithm:   algo.String(),
		Guided:      guide,
		Final:       res.Best.Value,
		BestByRound: res.Stats.BestByRound,
		TotalMoves:  res.Stats.TotalMoves,
		ElapsedMS:   float64(time.Since(began).Microseconds()) / 1000,
	}
	if guide {
		s.LPBound = res.Stats.LPBound
		s.CoreSize = res.Stats.CoreSize
		s.CoreFixedIn = res.Stats.CoreFixedIn
		s.CoreFixedOut = res.Stats.CoreFixedOut
		s.CoreRefreshes = res.Stats.CoreRefreshes
		s.ProvenOptimal = res.Stats.ProvenOptimal
	}
	if len(portfolio) > 0 {
		s.Portfolio = tabu.FormatPortfolio(portfolio)
		s.AlgoSlots = res.Stats.AlgoSlots
		s.AlgoWins = res.Stats.AlgoWins
		s.AlgoRounds = res.Stats.AlgoRounds
		s.SlotReallocs = res.Stats.SlotReallocs
	}
	return s, nil
}

// roundsToTarget returns the 1-based index of the first round whose best
// reached target, or 0 when the run started at or above it (empty trajectory:
// the run stopped before round 1, which only a proven-optimal start does).
func roundsToTarget(traj []float64, target float64) int {
	if len(traj) == 0 {
		return 0 // stopped before round 1: proven optimal at startup
	}
	for i, v := range traj {
		if v >= target-1e-9 {
			return i + 1
		}
	}
	return len(traj) + 1 // never reached: sorts after every real round
}

// WriteJSON emits the report as indented JSON (the BENCH_solver.json format).
func (r SolverReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadSolverReport parses a BENCH_solver.json document.
func ReadSolverReport(rd io.Reader) (SolverReport, error) {
	var r SolverReport
	err := json.NewDecoder(rd).Decode(&r)
	return r, err
}

// RenderSolverReport formats the suite as text: one trajectory table per
// instance plus the guided-vs-unguided summary.
func RenderSolverReport(r SolverReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "end-to-end solver benchmark: P=%d seed=%d rounds=%d moves/round=%d\n",
		r.Spec.P, r.Spec.Seed, r.Spec.Rounds, r.Spec.RoundMoves)
	for _, ir := range r.Instances {
		fmt.Fprintf(&b, "\n%s (%d*%d, tightness %.2f)\n",
			ir.Instance.Name, ir.Instance.M, ir.Instance.N, ir.Instance.Tightness)
		fmt.Fprintf(&b, "%-8s", "round")
		for _, s := range ir.Series {
			fmt.Fprintf(&b, " %10s", seriesLabel(s))
		}
		fmt.Fprintln(&b)
		for round := 0; round < r.Spec.Rounds; round++ {
			fmt.Fprintf(&b, "%-8d", round+1)
			for _, s := range ir.Series {
				if round < len(s.BestByRound) {
					fmt.Fprintf(&b, " %10.0f", s.BestByRound[round])
				} else {
					fmt.Fprintf(&b, " %10s", "-")
				}
			}
			fmt.Fprintln(&b)
		}
		fmt.Fprintf(&b, "target %.0f: guided CTS2 at round %d, unguided at round %d\n",
			ir.Target, ir.GuidedRound, ir.UnguidedRound)
		fmt.Fprintf(&b, "target %.0f: portfolio CTS2 at round %d, pure tabu at round %d\n",
			ir.PortfolioTarget, ir.PortfolioRound, ir.PureRound)
	}
	return b.String()
}

func seriesLabel(s SolverSeries) string {
	if s.Guided {
		return s.Algorithm + "g"
	}
	if s.Portfolio != "" {
		return s.Algorithm + "p"
	}
	return s.Algorithm
}
