// Package bench is the experiment harness: it regenerates every table in the
// paper's evaluation (§5) plus the ablations DESIGN.md calls out, on the
// generated benchmark suites. Each experiment returns structured rows and a
// Render* function prints them in the paper's layout so the output can be
// read side by side with the original tables.
//
// All experiments are driven by move budgets, so results are deterministic
// for a fixed seed; wall-clock columns are measured on the host and reported
// for shape only.
package bench

import (
	"errors"
	"fmt"

	"repro/internal/bound"
	"repro/internal/exact"
	"repro/internal/mkp"
)

// Reference holds the comparison values for one instance: the LP-relaxation
// upper bound, and the certified optimum when the exact solver proves it
// within its node budget.
type Reference struct {
	Name    string
	LPBound float64
	Optimum float64 // valid when Optimal
	Optimal bool
}

// BestKnown returns the tightest reference value: the optimum when proven,
// the LP bound otherwise.
func (r Reference) BestKnown() float64 {
	if r.Optimal {
		return r.Optimum
	}
	return r.LPBound
}

// Deviation returns the percentage gap of value below the reference,
// 100·(ref − value)/ref — the paper's "Dev. in %" column. A proven-optimal
// value yields exactly 0.
func (r Reference) Deviation(value float64) float64 {
	ref := r.BestKnown()
	if ref <= 0 {
		return 0
	}
	d := 100 * (ref - value) / ref
	if d < 0 {
		d = 0
	}
	return d
}

// ComputeReference solves the LP relaxation and, when nodeLimit > 0,
// attempts an exact solve within that node budget.
func ComputeReference(ins *mkp.Instance, nodeLimit int64) (Reference, error) {
	ref := Reference{Name: ins.Name}
	lb, err := bound.LP(ins)
	if err != nil {
		return ref, fmt.Errorf("bench: LP bound for %s: %w", ins.Name, err)
	}
	ref.LPBound = lb
	if nodeLimit > 0 {
		res, err := exact.BranchAndBound(ins, exact.Options{NodeLimit: nodeLimit, Epsilon: 0.999})
		switch {
		case err == nil && res.Optimal:
			ref.Optimum = res.Solution.Value
			ref.Optimal = true
		case errors.Is(err, exact.ErrNodeLimit):
			// Fall back to the LP bound silently; the caller reports Optimal.
		case err != nil:
			return ref, fmt.Errorf("bench: exact reference for %s: %w", ins.Name, err)
		}
	}
	return ref, nil
}
