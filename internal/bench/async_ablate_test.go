package bench

import (
	"strings"
	"testing"
)

func TestAblationAsyncShape(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation in -short mode")
	}
	// P must exceed 3 for the ring to actually restrict fan-out (at P <= 3
	// the two neighbors are everyone, so ring == full broadcast).
	rows, err := AblationAsync(AblationConfig{Seed: 17, P: 5, Rounds: 2, RoundMoves: 150, Seeds: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	names := []string{"sync (CTS2)", "async full", "async ring"}
	for i, r := range rows {
		if r.Scheme != names[i] {
			t.Fatalf("row %d scheme %q, want %q", i, r.Scheme, names[i])
		}
		if r.Value.Mean <= 0 || r.Value.N != 4 {
			t.Fatalf("row %q summary %+v", r.Scheme, r.Value)
		}
	}
	// The ring halves the fan-out (2 targets vs 4 at P=5) but its slower
	// propagation can trigger more distinct publishes, and async timing makes
	// the counts noisy — so allow generous slack rather than a strict order.
	if rows[2].Messages.Mean > 1.5*rows[1].Messages.Mean {
		t.Fatalf("ring messages %v far above full %v", rows[2].Messages.Mean, rows[1].Messages.Mean)
	}
	out := RenderAsync(rows)
	if !strings.Contains(out, "async ring") {
		t.Fatalf("render broken:\n%s", out)
	}
	if ex := ExportAsync(rows); len(ex.Rows) != 3 {
		t.Fatal("export broken")
	}
}
