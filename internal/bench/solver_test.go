package bench

import (
	"os"
	"testing"
)

func TestRoundsToTarget(t *testing.T) {
	cases := []struct {
		traj   []float64
		target float64
		want   int
	}{
		{nil, 100, 0},                     // proven optimal before round 1
		{[]float64{90, 100, 100}, 100, 2}, // first reached in round 2
		{[]float64{100, 100}, 100, 1},     // reached immediately
		{[]float64{90, 95, 99}, 100, 4},   // never: sorts after every round
		{[]float64{90, 95, 99}, 99, 3},    // exact hit in the last round
	}
	for _, c := range cases {
		if got := roundsToTarget(c.traj, c.target); got != c.want {
			t.Errorf("roundsToTarget(%v, %v) = %d, want %d", c.traj, c.target, got, c.want)
		}
	}
}

// The quick suite must produce structurally sound reports: six series per
// instance (four unguided algorithms, guided CTS2, portfolio CTS2), monotone
// trajectories whose last entry is the final, and targets every compared run
// provably reaches.
func TestRunSolverSuiteQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("solver suite run in -short mode")
	}
	rep, err := RunSolverSuite(QuickSolverSpec(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Instances) != len(QuickSolverSpec().Instances) {
		t.Fatalf("%d instance reports, want %d", len(rep.Instances), len(QuickSolverSpec().Instances))
	}
	for _, ir := range rep.Instances {
		if len(ir.Series) != len(solverAlgorithms)+2 {
			t.Fatalf("%s: %d series, want %d", ir.Instance.Name, len(ir.Series), len(solverAlgorithms)+2)
		}
		var guided, unguided, mixed *SolverSeries
		for i := range ir.Series {
			s := &ir.Series[i]
			for r := 1; r < len(s.BestByRound); r++ {
				if s.BestByRound[r] < s.BestByRound[r-1] {
					t.Fatalf("%s %s: trajectory decreases at round %d", ir.Instance.Name, seriesLabel(*s), r+1)
				}
			}
			if n := len(s.BestByRound); n > 0 && s.BestByRound[n-1] != s.Final {
				t.Fatalf("%s %s: final %v != last trajectory entry %v",
					ir.Instance.Name, seriesLabel(*s), s.Final, s.BestByRound[n-1])
			}
			if s.Algorithm == "CTS2" {
				switch {
				case s.Guided:
					guided = s
				case s.Portfolio != "":
					mixed = s
				default:
					unguided = s
				}
			}
		}
		if guided == nil || unguided == nil || mixed == nil {
			t.Fatalf("%s: missing a CTS2 series", ir.Instance.Name)
		}
		if ir.Target > guided.Final || ir.Target > unguided.Final {
			t.Fatalf("%s: target %v above a CTS2 final (guided %v, unguided %v)",
				ir.Instance.Name, ir.Target, guided.Final, unguided.Final)
		}
		if want := roundsToTarget(guided.BestByRound, ir.Target); ir.GuidedRound != want {
			t.Fatalf("%s: guided round %d, recomputed %d", ir.Instance.Name, ir.GuidedRound, want)
		}
		if want := roundsToTarget(unguided.BestByRound, ir.Target); ir.UnguidedRound != want {
			t.Fatalf("%s: unguided round %d, recomputed %d", ir.Instance.Name, ir.UnguidedRound, want)
		}
		if guided.LPBound < guided.Final {
			t.Fatalf("%s: LP bound %v below guided final %v", ir.Instance.Name, guided.LPBound, guided.Final)
		}

		if ir.PortfolioTarget > mixed.Final || ir.PortfolioTarget > unguided.Final {
			t.Fatalf("%s: portfolio target %v above a final (mixed %v, pure %v)",
				ir.Instance.Name, ir.PortfolioTarget, mixed.Final, unguided.Final)
		}
		if want := roundsToTarget(mixed.BestByRound, ir.PortfolioTarget); ir.PortfolioRound != want {
			t.Fatalf("%s: portfolio round %d, recomputed %d", ir.Instance.Name, ir.PortfolioRound, want)
		}
		if want := roundsToTarget(unguided.BestByRound, ir.PortfolioTarget); ir.PureRound != want {
			t.Fatalf("%s: pure round %d, recomputed %d", ir.Instance.Name, ir.PureRound, want)
		}
		slots := 0
		for _, n := range mixed.AlgoSlots {
			slots += n
		}
		if slots != QuickSolverSpec().P {
			t.Fatalf("%s: portfolio slot counts %v do not sum to P", ir.Instance.Name, mixed.AlgoSlots)
		}
	}
}

// The committed baseline must witness the guidance claim: on every pinned
// instance the guided CTS2 run reaches the target no later than the unguided
// one, and strictly earlier on at least half of them. Regenerate with
// `make solverbench` after an intentional engine change.
func TestCommittedSolverBaseline(t *testing.T) {
	f, err := os.Open("../../BENCH_solver.json")
	if os.IsNotExist(err) {
		t.Skip("no committed BENCH_solver.json")
	}
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rep, err := ReadSolverReport(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Instances) == 0 {
		t.Fatal("committed baseline has no instances")
	}
	strict := 0
	for _, ir := range rep.Instances {
		if ir.GuidedRound > ir.UnguidedRound {
			t.Errorf("%s: guided reaches target at round %d, after unguided round %d",
				ir.Instance.Name, ir.GuidedRound, ir.UnguidedRound)
		}
		if ir.GuidedRound < ir.UnguidedRound {
			strict++
		}
	}
	if 2*strict < len(rep.Instances) {
		t.Errorf("guided strictly earlier on %d of %d instances, want at least half",
			strict, len(rep.Instances))
	}

	// The hyper-heuristic claim: the mixed portfolio reaches the pure-tabu
	// target no later than pure CTS2 on every pinned instance (and the
	// baseline must carry at least two instances witnessing it).
	witnesses := 0
	for _, ir := range rep.Instances {
		if ir.PortfolioRound > ir.PureRound {
			t.Errorf("%s: portfolio reaches target at round %d, after pure tabu round %d",
				ir.Instance.Name, ir.PortfolioRound, ir.PureRound)
		} else {
			witnesses++
		}
	}
	if witnesses < 2 {
		t.Errorf("portfolio no-later witnessed on %d instances, want at least 2", witnesses)
	}
}
