package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/mkp"
	"repro/internal/tabu"
)

// The kernel microbenchmark suite times the evaluator hot path — State.Add,
// State.Drop, State.Fits, and the greedy add phase — on a GK-size instance,
// in two builds: the optimized column-major kernel the solvers run, and the
// retained row-major NaiveState reference (the repository's pre-optimization
// layout). The pairing turns every run into a before/after measurement, and
// the exported JSON (BENCH_kernel.json at the repo root) is the baseline the
// CI smoke and future PRs compare against.

// KernelSpec describes the instance the suite runs on. The default matches
// the acceptance target for this kernel: the paper's largest GK shape,
// m=25 constraints over n=500 items.
type KernelSpec struct {
	N         int     `json:"n"`
	M         int     `json:"m"`
	Tightness float64 `json:"tightness"`
	Seed      uint64  `json:"seed"`
}

// DefaultKernelSpec is the m=25, n=500 GK instance the committed baseline
// uses.
func DefaultKernelSpec() KernelSpec {
	return KernelSpec{N: 500, M: 25, Tightness: 0.25, Seed: 42}
}

// Instance materializes the spec.
func (sp KernelSpec) Instance() *mkp.Instance {
	return gen.GK(fmt.Sprintf("kernel-%dx%d", sp.M, sp.N), sp.N, sp.M, sp.Tightness, sp.Seed)
}

// KernelResult is one benchmark measurement.
type KernelResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// KernelReport is the exported suite result: every measurement plus the
// naive/optimized speedup for each paired benchmark.
type KernelReport struct {
	Spec     KernelSpec         `json:"spec"`
	Results  []KernelResult     `json:"results"`
	Speedups map[string]float64 `json:"speedups"`
}

// KernelStateAdd benchmarks one Add followed by the undoing Drop of a
// mid-rank item, so the state returns to the same assignment every
// iteration. naive selects the row-major reference kernel.
func KernelStateAdd(b *testing.B, sp KernelSpec, naive bool) {
	ins := sp.Instance()
	j := pivotItem(ins)
	b.ReportAllocs()
	if naive {
		st := mkp.NewNaiveState(ins)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			st.Add(j)
			st.Drop(j)
		}
		return
	}
	st := mkp.NewState(ins)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Add(j)
		st.Drop(j)
	}
}

// KernelStateDrop benchmarks one Drop followed by the undoing Add, starting
// from the greedy solution so slacks are realistically tight.
func KernelStateDrop(b *testing.B, sp KernelSpec, naive bool) {
	ins := sp.Instance()
	start := mkp.Greedy(ins)
	j := start.X.NextSet(0)
	b.ReportAllocs()
	if naive {
		st := mkp.NewNaiveState(ins)
		st.Load(start.X)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			st.Drop(j)
			st.Add(j)
		}
		return
	}
	st := mkp.NewState(ins)
	st.Load(start.X)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Drop(j)
		st.Add(j)
	}
}

// KernelFits benchmarks the feasibility probe over every unpacked item of the
// greedy solution — the exact scan pattern of the tabu add phase.
func KernelFits(b *testing.B, sp KernelSpec, naive bool) {
	ins := sp.Instance()
	start := mkp.Greedy(ins)
	var probes []int
	for j := 0; j < ins.N; j++ {
		if !start.X.Get(j) {
			probes = append(probes, j)
		}
	}
	b.ReportAllocs()
	if naive {
		st := mkp.NewNaiveState(ins)
		st.Load(start.X)
		b.ResetTimer()
		sink := 0
		for i := 0; i < b.N; i++ {
			for _, j := range probes {
				if st.Fits(j) {
					sink++
				}
			}
		}
		sinkHole = sink
		return
	}
	st := mkp.NewState(ins)
	st.Load(start.X)
	b.ResetTimer()
	sink := 0
	for i := 0; i < b.N; i++ {
		for _, j := range probes {
			if st.Fits(j) {
				sink++
			}
		}
	}
	sinkHole = sink
}

// KernelAddPhase benchmarks one full greedy add phase from the empty
// assignment: pruned FillGreedy on the optimized state versus the unpruned
// reference fill on the naive state (which also re-derives the utility
// ranking per call, exactly as the pre-optimization code did).
func KernelAddPhase(b *testing.B, sp KernelSpec, naive bool) {
	ins := sp.Instance()
	b.ReportAllocs()
	if naive {
		st := mkp.NewNaiveState(ins)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			st.Reset()
			mkp.FillGreedyNaive(st)
		}
		return
	}
	st := mkp.NewState(ins)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Reset()
		mkp.FillGreedy(st)
	}
}

// KernelSearcherRun benchmarks one end-to-end tabu round (200 compound moves)
// on the optimized kernel: the integrated number that Table 1/2 runtimes are
// made of. There is no naive pairing — the solvers only run the optimized
// state — so the committed baseline is the regression reference instead.
func KernelSearcherRun(b *testing.B, sp KernelSpec) {
	ins := sp.Instance()
	start := mkp.Greedy(ins)
	p := tabu.DefaultParams(ins.N)
	s, err := tabu.NewSearcher(ins, sp.Seed)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Run(start, p, 200); err != nil {
			b.Fatal(err)
		}
	}
}

// sinkHole defeats dead-code elimination of benchmark loop bodies.
var sinkHole int

// pivotItem returns an item from the middle of the utility ranking: neither
// a guaranteed pack nor a guaranteed reject.
func pivotItem(ins *mkp.Instance) int {
	rank := mkp.RankByUtility(ins)
	return rank[len(rank)/2]
}

// RunKernelSuite executes the whole paired suite with testing.Benchmark and
// returns the report. It is what `mkpbench -kernelbench` calls; the
// Benchmark* functions in kernel_test.go expose the same bodies to
// `go test -bench`.
func RunKernelSuite(sp KernelSpec) KernelReport {
	rep := KernelReport{Spec: sp, Speedups: map[string]float64{}}
	type pair struct {
		name  string
		opt   func(*testing.B)
		naive func(*testing.B) // nil for unpaired benchmarks
	}
	cases := []pair{
		{"StateAdd", func(b *testing.B) { KernelStateAdd(b, sp, false) }, func(b *testing.B) { KernelStateAdd(b, sp, true) }},
		{"StateDrop", func(b *testing.B) { KernelStateDrop(b, sp, false) }, func(b *testing.B) { KernelStateDrop(b, sp, true) }},
		{"Fits", func(b *testing.B) { KernelFits(b, sp, false) }, func(b *testing.B) { KernelFits(b, sp, true) }},
		{"AddPhase", func(b *testing.B) { KernelAddPhase(b, sp, false) }, func(b *testing.B) { KernelAddPhase(b, sp, true) }},
		{"SearcherRun", func(b *testing.B) { KernelSearcherRun(b, sp) }, nil},
	}
	for _, c := range cases {
		opt := measure(c.name, c.opt)
		rep.Results = append(rep.Results, opt)
		if c.naive == nil {
			continue
		}
		ref := measure(c.name+"Naive", c.naive)
		rep.Results = append(rep.Results, ref)
		if opt.NsPerOp > 0 {
			rep.Speedups[c.name] = ref.NsPerOp / opt.NsPerOp
		}
	}
	return rep
}

func measure(name string, fn func(*testing.B)) KernelResult {
	r := testing.Benchmark(fn)
	return KernelResult{
		Name:        name,
		Iterations:  r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

// WriteJSON emits the report as indented JSON (the BENCH_kernel.json format).
func (r KernelReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadKernelReport parses a BENCH_kernel.json document.
func ReadKernelReport(rd io.Reader) (KernelReport, error) {
	var r KernelReport
	err := json.NewDecoder(rd).Decode(&r)
	return r, err
}

// CompareKernelReports checks the current suite run against a committed
// baseline: every optimized op whose ns/op exceeds the baseline by more than
// tol (relative) is reported as a regression. Naive reference measurements
// are exempt — they exist to compute speedups, not to be defended — as are
// ops present on only one side (added or retired benchmarks).
func CompareKernelReports(baseline, current KernelReport, tol float64) []string {
	base := map[string]float64{}
	for _, r := range baseline.Results {
		base[r.Name] = r.NsPerOp
	}
	var regressions []string
	for _, r := range current.Results {
		if strings.HasSuffix(r.Name, "Naive") {
			continue
		}
		was, ok := base[r.Name]
		if !ok || was <= 0 {
			continue
		}
		if rel := r.NsPerOp/was - 1; rel > tol {
			regressions = append(regressions,
				fmt.Sprintf("%s: %.1f ns/op vs baseline %.1f (%+.1f%%, tolerance %.0f%%)",
					r.Name, r.NsPerOp, was, 100*rel, 100*tol))
		}
	}
	return regressions
}

// RenderKernelReport formats the report as an aligned text table.
func RenderKernelReport(r KernelReport) string {
	out := fmt.Sprintf("kernel microbenchmarks on %d*%d GK (tightness %.2f, seed %d)\n",
		r.Spec.M, r.Spec.N, r.Spec.Tightness, r.Spec.Seed)
	out += fmt.Sprintf("%-16s %14s %12s %12s\n", "benchmark", "ns/op", "allocs/op", "B/op")
	for _, res := range r.Results {
		out += fmt.Sprintf("%-16s %14.1f %12d %12d\n", res.Name, res.NsPerOp, res.AllocsPerOp, res.BytesPerOp)
	}
	for _, c := range []string{"StateAdd", "StateDrop", "Fits", "AddPhase"} {
		if s, ok := r.Speedups[c]; ok {
			out += fmt.Sprintf("speedup %-12s %6.2fx\n", c, s)
		}
	}
	return out
}
