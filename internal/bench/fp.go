package bench

import (
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
)

// FPConfig sizes the Fréville–Plateau experiment: the paper reports that
// "the optimal solution is reached for all these [57] problems" (§5).
type FPConfig struct {
	Seed       uint64
	P          int
	Rounds     int   // maximum master iterations before giving up
	RoundMoves int64 // per-slave per-round budget
	// ExactNodeLimit caps the per-problem reference solve. The generated
	// suite needs ~1e8 nodes for its single hardest problem; the default
	// (150M) certifies all 57.
	ExactNodeLimit int64
	// Limit truncates the suite to its first Limit problems (0 = all 57);
	// tests use it to stay fast.
	Limit    int
	Progress io.Writer
}

func (c FPConfig) withDefaults() FPConfig {
	if c.P <= 0 {
		c.P = 12
	}
	if c.Rounds <= 0 {
		c.Rounds = 100
	}
	if c.RoundMoves <= 0 {
		c.RoundMoves = 1500
	}
	if c.ExactNodeLimit <= 0 {
		c.ExactNodeLimit = 150_000_000
	}
	return c
}

// FPRow records one FP problem: whether the parallel TS matched the
// certified optimum and how fast.
type FPRow struct {
	Name    string
	Size    string
	Optimum float64
	Proven  bool
	Value   float64
	Hit     bool
	Rounds  int // master rounds consumed (early-stopped on the optimum)
	Time    time.Duration
}

// FPSummary aggregates the suite.
type FPSummary struct {
	Rows    []FPRow
	Proven  int // problems with certified optima
	Hits    int // problems where CTS2 matched the certified optimum
	MaxTime time.Duration
}

// FPReport runs CTS2 with early stop at the certified optimum over the FP
// suite, reproducing the §5 claim.
func FPReport(cfg FPConfig) (*FPSummary, error) {
	cfg = cfg.withDefaults()
	suite := gen.FPSuite(cfg.Seed)
	if cfg.Limit > 0 && cfg.Limit < len(suite) {
		suite = suite[:cfg.Limit]
	}
	sum := &FPSummary{}
	for i, ins := range suite {
		ref, err := ComputeReference(ins, cfg.ExactNodeLimit)
		if err != nil {
			return nil, err
		}
		opts := core.Options{
			P:          cfg.P,
			Seed:       cfg.Seed + uint64(i)*131,
			Rounds:     cfg.Rounds,
			RoundMoves: cfg.RoundMoves,
		}
		if ref.Optimal {
			opts.Target = ref.Optimum
		}
		res, err := core.Solve(ins, core.CTS2, opts)
		if err != nil {
			return nil, err
		}
		row := FPRow{
			Name:    ins.Name,
			Size:    ins.Size(),
			Optimum: ref.Optimum,
			Proven:  ref.Optimal,
			Value:   res.Best.Value,
			Rounds:  res.Stats.Rounds,
			Time:    res.Stats.Elapsed,
		}
		if ref.Optimal && res.Best.Value >= ref.Optimum-1e-9 {
			row.Hit = true
			sum.Hits++
		}
		if ref.Optimal {
			sum.Proven++
		}
		if res.Stats.Elapsed > sum.MaxTime {
			sum.MaxTime = res.Stats.Elapsed
		}
		sum.Rows = append(sum.Rows, row)
		if cfg.Progress != nil {
			status := "MISS"
			if row.Hit {
				status = "hit"
			} else if !row.Proven {
				status = "unproven"
			}
			fmt.Fprintf(cfg.Progress, "fp %-14s opt=%.0f got=%.0f rounds=%d %s\n",
				row.Name, row.Optimum, row.Value, row.Rounds, status)
		}
	}
	return sum, nil
}

// RenderFP prints the summary in the style of the §5 narrative.
func RenderFP(s *FPSummary) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Freville-Plateau-style suite: %d problems, %d with certified optima\n",
		len(s.Rows), s.Proven)
	fmt.Fprintf(&b, "Optimum reached on %d/%d certified problems (max time %v)\n",
		s.Hits, s.Proven, s.MaxTime.Round(time.Millisecond))
	misses := 0
	for _, r := range s.Rows {
		if r.Proven && !r.Hit {
			fmt.Fprintf(&b, "  missed %-14s opt=%.0f got=%.0f (gap %.3f%%)\n",
				r.Name, r.Optimum, r.Value, 100*(r.Optimum-r.Value)/r.Optimum)
			misses++
		}
	}
	if misses == 0 && s.Proven > 0 {
		fmt.Fprintf(&b, "  (matches the paper: the optimal solution is reached for all problems)\n")
	}
	return b.String()
}
