package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// The Benchmark* functions expose the kernel suite to `go test -bench` (the
// Makefile's bench smoke runs them); RunKernelSuite reuses the same bodies
// for the BENCH_kernel.json export. The *Naive variants time the retained
// row-major reference kernel so every run is a before/after pair.

func BenchmarkStateAdd(b *testing.B)       { KernelStateAdd(b, DefaultKernelSpec(), false) }
func BenchmarkStateAddNaive(b *testing.B)  { KernelStateAdd(b, DefaultKernelSpec(), true) }
func BenchmarkStateDrop(b *testing.B)      { KernelStateDrop(b, DefaultKernelSpec(), false) }
func BenchmarkStateDropNaive(b *testing.B) { KernelStateDrop(b, DefaultKernelSpec(), true) }
func BenchmarkFits(b *testing.B)           { KernelFits(b, DefaultKernelSpec(), false) }
func BenchmarkFitsNaive(b *testing.B)      { KernelFits(b, DefaultKernelSpec(), true) }
func BenchmarkAddPhase(b *testing.B)       { KernelAddPhase(b, DefaultKernelSpec(), false) }
func BenchmarkAddPhaseNaive(b *testing.B)  { KernelAddPhase(b, DefaultKernelSpec(), true) }
func BenchmarkSearcherRun(b *testing.B)    { KernelSearcherRun(b, DefaultKernelSpec()) }

// TestRunKernelSuite smoke-runs the suite on a small shape and checks the
// report and its JSON round-trip are well-formed. The committed baseline uses
// the full m=25, n=500 spec; this keeps `go test` fast.
func TestRunKernelSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("kernel suite timing in -short mode")
	}
	sp := KernelSpec{N: 60, M: 5, Tightness: 0.25, Seed: 7}
	rep := RunKernelSuite(sp)
	if len(rep.Results) != 9 {
		t.Fatalf("got %d results, want 9", len(rep.Results))
	}
	seen := map[string]bool{}
	for _, r := range rep.Results {
		seen[r.Name] = true
		if r.NsPerOp <= 0 {
			t.Fatalf("%s: non-positive ns/op %v", r.Name, r.NsPerOp)
		}
	}
	for _, want := range []string{"StateAdd", "StateAddNaive", "Fits", "FitsNaive", "AddPhase", "AddPhaseNaive", "SearcherRun"} {
		if !seen[want] {
			t.Fatalf("missing benchmark %q in report", want)
		}
	}
	for _, c := range []string{"StateAdd", "StateDrop", "Fits", "AddPhase"} {
		if rep.Speedups[c] <= 0 {
			t.Fatalf("speedup for %s not recorded", c)
		}
	}

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back KernelReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Spec != sp || len(back.Results) != len(rep.Results) {
		t.Fatal("JSON round-trip lost data")
	}
	if txt := RenderKernelReport(rep); !strings.Contains(txt, "SearcherRun") {
		t.Fatalf("render missing rows:\n%s", txt)
	}
}
