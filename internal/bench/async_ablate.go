package bench

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/stats"
)

// AsyncRow reports one communication scheme at a fixed per-thread budget.
type AsyncRow struct {
	Scheme   string
	Value    stats.Summary
	Messages stats.Summary // farm messages per run
}

// AblationAsync evaluates the paper's announced future work (§6): replacing
// the centralized synchronous master–slave scheme with a decentralized
// asynchronous one. All three schemes get the same per-thread move budget on
// MK1: the synchronous CTS2, the asynchronous full-broadcast peers, and the
// asynchronous ring (experiment J). Async runs are not seed-reproducible
// (arrival timing matters), hence the multi-seed summaries.
func AblationAsync(cfg AblationConfig) ([]AsyncRow, error) {
	cfg = cfg.withDefaults()
	ins := ablationInstance(cfg.Seed)
	perThread := cfg.RoundMoves * int64(cfg.Rounds)

	collect := func(name string, run func(seed uint64) (float64, int64, error)) (AsyncRow, error) {
		var values, msgs []float64
		for s := 0; s < cfg.Seeds; s++ {
			v, m, err := run(cfg.Seed + uint64(s)*1217)
			if err != nil {
				return AsyncRow{}, err
			}
			values = append(values, v)
			msgs = append(msgs, float64(m))
			if cfg.Progress != nil {
				fmt.Fprintf(cfg.Progress, "async %-12s seed=%d value=%.0f msgs=%d\n", name, s, v, m)
			}
		}
		return AsyncRow{Scheme: name, Value: stats.Summarize(values), Messages: stats.Summarize(msgs)}, nil
	}

	sync, err := collect("sync (CTS2)", func(seed uint64) (float64, int64, error) {
		res, err := core.Solve(ins, core.CTS2, core.Options{
			P: cfg.P, Seed: seed, Rounds: cfg.Rounds, RoundMoves: cfg.RoundMoves,
		})
		if err != nil {
			return 0, 0, err
		}
		return res.Best.Value, res.Stats.Messages, nil
	})
	if err != nil {
		return nil, err
	}
	full, err := collect("async full", func(seed uint64) (float64, int64, error) {
		res, err := core.SolveAsync(ins, core.AsyncOptions{
			P: cfg.P, Seed: seed, TotalMoves: perThread, ChunkMoves: cfg.RoundMoves,
		})
		if err != nil {
			return 0, 0, err
		}
		return res.Best.Value, res.Stats.Messages, nil
	})
	if err != nil {
		return nil, err
	}
	ring, err := collect("async ring", func(seed uint64) (float64, int64, error) {
		res, err := core.SolveAsync(ins, core.AsyncOptions{
			P: cfg.P, Seed: seed, TotalMoves: perThread, ChunkMoves: cfg.RoundMoves, Ring: true,
		})
		if err != nil {
			return 0, 0, err
		}
		return res.Best.Value, res.Stats.Messages, nil
	})
	if err != nil {
		return nil, err
	}
	return []AsyncRow{sync, full, ring}, nil
}

// RenderAsync prints the communication-scheme comparison.
func RenderAsync(rows []AsyncRow) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Ablation J: synchronous master-slave vs decentralized asynchronous (MK1, equal per-thread budget)")
	fmt.Fprintf(&b, "%-14s %-16s %s\n", "scheme", "value", "messages")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %-16s %s\n", r.Scheme, r.Value.String(), r.Messages.String())
	}
	return b.String()
}

// ExportAsync converts ablation J rows.
func ExportAsync(rows []AsyncRow) Export {
	e := Export{Name: "ablation_async", Header: []string{"scheme", "mean_value", "mean_messages"}}
	for _, r := range rows {
		e.Rows = append(e.Rows, []string{r.Scheme, fnum(r.Value.Mean), fnum(r.Messages.Mean)})
	}
	return e
}
