package bench

import (
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/mkp"
	"repro/internal/stats"
	"repro/internal/vtime"
)

// Algorithms lists the four Table 2 columns in the paper's order.
var Algorithms = []core.Algorithm{core.SEQ, core.ITS, core.CTS1, core.CTS2}

// Table2Config sizes the Table 2 experiment: best cost found by the four
// approaches within the same execution budget on the large MK problems.
type Table2Config struct {
	Seed       uint64
	P          int   // slaves for the parallel variants
	Rounds     int   // master iterations
	RoundMoves int64 // per-slave per-round budget
	Seeds      int   // independent repetitions averaged per cell (default 3)
	Progress   io.Writer
}

func (c Table2Config) withDefaults() Table2Config {
	if c.P <= 0 {
		c.P = 8
	}
	if c.Rounds <= 0 {
		c.Rounds = 12
	}
	if c.RoundMoves <= 0 {
		c.RoundMoves = 1500
	}
	if c.Seeds <= 0 {
		c.Seeds = 3
	}
	return c
}

// Table2Row is one row of the paper's Table 2: one MK problem, the best cost
// per algorithm summarized over the repetitions, and the fixed execution
// time every algorithm was granted (simulated on the paper's Alpha model).
type Table2Row struct {
	Problem string
	Size    string
	Value   map[core.Algorithm]stats.Summary // over Seeds repetitions
	Samples map[core.Algorithm][]float64     // raw per-seed values (paired across algorithms)
	Moves   map[core.Algorithm]int64         // total moves summed over repetitions
	SimTime time.Duration                    // the per-problem simulated execution budget (Exec Time column)
	Time    time.Duration                    // max HOST wall clock of any single run
}

// Winner returns the algorithm with the highest mean cost in the row (ties
// go to the later entrant in SEQ<ITS<CTS1<CTS2 order, matching the paper's
// expectation that cooperation never hurts).
func (r Table2Row) Winner() core.Algorithm {
	best := core.SEQ
	for _, a := range Algorithms {
		if r.Value[a].Mean >= r.Value[best].Mean {
			best = a
		}
	}
	return best
}

// Table2 runs SEQ, ITS, CTS1 and CTS2 on the five MK problems under the
// paper's fixed-execution-time protocol, enforced on the simulated Alpha
// clock: every algorithm gets the same per-problem simulated budget
// (Rounds·RoundMoves moves' worth), so the parallel variants spend P times
// the total work of SEQ in the same execution time — exactly the comparison
// of §5, and deterministic because the clock is simulated. Each cell is
// averaged over Seeds paired repetitions.
func Table2(cfg Table2Config) ([]Table2Row, error) {
	cfg = cfg.withDefaults()
	suite := gen.MKSuite(cfg.Seed)
	rows := make([]Table2Row, 0, len(suite))
	for i, ins := range suite {
		row, err := CompareInstance(ins, gen.MKSizes()[i].Label, uint64(i)*97, cfg)
		if err != nil {
			return nil, err
		}
		rows = append(rows, *row)
	}
	return rows, nil
}

// CompareInstance runs the four algorithms on one instance under the
// fixed-simulated-execution-time protocol and returns the Table 2 row.
// seedOffset decorrelates problems within a suite.
func CompareInstance(ins *mkp.Instance, label string, seedOffset uint64, cfg Table2Config) (*Table2Row, error) {
	cfg = cfg.withDefaults()
	clock := vtime.Alpha()
	simBudget := time.Duration(cfg.Rounds) * time.Duration(cfg.RoundMoves) * clock.MoveDuration(ins.N, ins.M)
	row := &Table2Row{
		Problem: label,
		Size:    ins.Size(),
		Value:   make(map[core.Algorithm]stats.Summary, len(Algorithms)),
		Samples: make(map[core.Algorithm][]float64, len(Algorithms)),
		Moves:   make(map[core.Algorithm]int64, len(Algorithms)),
		SimTime: simBudget,
	}
	for _, algo := range Algorithms {
		values := make([]float64, 0, cfg.Seeds)
		for s := 0; s < cfg.Seeds; s++ {
			res, err := core.Solve(ins, algo, core.Options{
				P:          cfg.P,
				Seed:       cfg.Seed + seedOffset + uint64(s)*104729,
				RoundMoves: cfg.RoundMoves,
				SimBudget:  simBudget,
			})
			if err != nil {
				return nil, fmt.Errorf("bench: compare %s/%v: %w", ins.Name, algo, err)
			}
			values = append(values, res.Best.Value)
			row.Moves[algo] += res.Stats.TotalMoves
			if res.Stats.Elapsed > row.Time {
				row.Time = res.Stats.Elapsed
			}
			if cfg.Progress != nil {
				fmt.Fprintf(cfg.Progress, "compare %-12s %-4v seed=%d value=%.0f moves=%d time=%v\n",
					ins.Name, algo, s, res.Best.Value, res.Stats.TotalMoves,
					res.Stats.Elapsed.Round(time.Millisecond))
			}
		}
		row.Samples[algo] = values
		row.Value[algo] = stats.Summarize(values)
	}
	return row, nil
}

// RenderTable2 prints the rows in the paper's Table 2 layout, with mean ±
// 95% half-width per cell and a paired win/loss/tie line for the headline
// CTS2-vs-ITS comparison.
func RenderTable2(rows []Table2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: Comparison of the four approaches\n")
	fmt.Fprintf(&b, "%-6s %-8s %16s %16s %16s %16s  %-10s %s\n",
		"Prob", "m*n", "SEQ", "ITS", "CTS1", "CTS2", "Exec Time", "Winner")
	var wins, losses, ties int
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6s %-8s %16s %16s %16s %16s  %-10s %v\n",
			r.Problem, r.Size,
			r.Value[core.SEQ], r.Value[core.ITS], r.Value[core.CTS1], r.Value[core.CTS2],
			r.SimTime.Round(time.Millisecond), r.Winner())
		w, l, t := stats.WinLossTie(r.Samples[core.CTS2], r.Samples[core.ITS])
		wins += w
		losses += l
		ties += t
	}
	fmt.Fprintf(&b, "paired CTS2 vs ITS across all cells: %d wins, %d ties, %d losses\n", wins, ties, losses)
	fmt.Fprintf(&b, "Exec Time is the fixed simulated budget per problem on the paper's Alpha-farm model\n")
	return b.String()
}
