package bench

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/cets"
	"repro/internal/stats"
	"repro/internal/tabu"
)

// KernelRow compares one sequential search kernel at a fixed work budget.
type KernelRow struct {
	Kernel string
	Value  stats.Summary
	Time   stats.Summary // host milliseconds per run
}

// flipsPerMove approximates how many item flips one compound Drop/Add move
// of the paper's kernel performs (NbDrop drops plus a handful of adds), used
// to grant the flip-based CETS baseline an equivalent budget.
const flipsPerMove = 8

// AblationKernel compares the paper's drop/add tabu kernel against the
// critical-event tabu search of Glover & Kochenberger — the method §5
// compares running times with — at an equivalent work budget on MK1
// (experiment H).
func AblationKernel(cfg AblationConfig) ([]KernelRow, error) {
	cfg = cfg.withDefaults()
	ins := ablationInstance(cfg.Seed)
	moves := cfg.RoundMoves * int64(cfg.Rounds)

	var paperVals, paperMS, cetsVals, cetsMS []float64
	for s := 0; s < cfg.Seeds; s++ {
		seed := cfg.Seed + uint64(s)*7127

		start := time.Now()
		pRes, err := tabu.Search(ins, tabu.DefaultParams(ins.N), moves, seed)
		if err != nil {
			return nil, err
		}
		paperMS = append(paperMS, float64(time.Since(start).Microseconds())/1000)
		paperVals = append(paperVals, pRes.Best.Value)

		start = time.Now()
		cRes, err := cets.Search(ins, cets.Options{Seed: seed, Budget: moves * flipsPerMove})
		if err != nil {
			return nil, err
		}
		cetsMS = append(cetsMS, float64(time.Since(start).Microseconds())/1000)
		cetsVals = append(cetsVals, cRes.Best.Value)

		if cfg.Progress != nil {
			fmt.Fprintf(cfg.Progress, "kernel seed=%d paper=%.0f cets=%.0f\n",
				seed, pRes.Best.Value, cRes.Best.Value)
		}
	}
	return []KernelRow{
		{Kernel: "paper drop/add TS", Value: stats.Summarize(paperVals), Time: stats.Summarize(paperMS)},
		{Kernel: "critical-event TS", Value: stats.Summarize(cetsVals), Time: stats.Summarize(cetsMS)},
	}, nil
}

// RenderKernel prints the kernel comparison.
func RenderKernel(rows []KernelRow) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Ablation H: sequential kernel vs critical-event TS (MK1, equivalent work)")
	fmt.Fprintf(&b, "%-20s %-16s %s\n", "kernel", "value", "host ms")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-20s %-16s %s\n", r.Kernel, r.Value.String(), r.Time.String())
	}
	return b.String()
}
