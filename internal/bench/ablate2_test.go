package bench

import (
	"strings"
	"testing"

	"repro/internal/tabu"
)

func TestAblationPoliciesShape(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation in -short mode")
	}
	rows, err := AblationPolicies(AblationConfig{Seed: 7, Rounds: 2, RoundMoves: 150, Seeds: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d policy rows, want 3", len(rows))
	}
	wantOrder := []tabu.TabuPolicy{tabu.PolicyStatic, tabu.PolicyReactive, tabu.PolicyREM}
	for i, r := range rows {
		if r.Policy != wantOrder[i] {
			t.Fatalf("row %d policy %v, want %v", i, r.Policy, wantOrder[i])
		}
		if r.MeanValue <= 0 {
			t.Fatalf("policy %v found nothing", r.Policy)
		}
	}
	if out := RenderPolicies(rows); !strings.Contains(out, "static") || !strings.Contains(out, "rem") {
		t.Fatalf("render broken:\n%s", out)
	}
}

func TestAblationGrainShape(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation in -short mode")
	}
	rows, err := AblationGrain(AblationConfig{Seed: 8, P: 2, Rounds: 2, RoundMoves: 100, Seeds: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d grain rows, want 3", len(rows))
	}
	coarse, low, dec := rows[0], rows[1], rows[2]
	if coarse.Scheme != "coarse (CTS2)" || low.Scheme != "low-level" || dec.Scheme != "decomposition" {
		t.Fatalf("unexpected schemes: %q %q %q", coarse.Scheme, low.Scheme, dec.Scheme)
	}
	if low.Moves != coarse.Moves {
		t.Fatalf("budgets differ: low %d vs coarse %d", low.Moves, coarse.Moves)
	}
	if dec.Value <= 0 || dec.Barriers != 1 {
		t.Fatalf("decomposition row wrong: %+v", dec)
	}
	// The low-level scheme synchronizes once per add step: orders of
	// magnitude more barriers than the per-round rendezvous of CTS2.
	if low.Barriers <= coarse.Barriers*10 {
		t.Fatalf("low-level barriers %d not far above coarse %d", low.Barriers, coarse.Barriers)
	}
	if out := RenderGrain(rows); !strings.Contains(out, "barriers") {
		t.Fatalf("render broken:\n%s", out)
	}
}
