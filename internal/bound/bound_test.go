package bound

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/mkp"
	"repro/internal/rng"
)

func tiny() *mkp.Instance {
	return &mkp.Instance{
		Name:   "tiny",
		N:      4,
		M:      2,
		Profit: []float64{10, 6, 4, 7},
		Weight: [][]float64{
			{3, 2, 1, 4},
			{2, 3, 3, 1},
		},
		Capacity: []float64{6, 5},
	}
}

func randomInstance(r *rng.Rand, n, m int) *mkp.Instance {
	ins := &mkp.Instance{
		Name:     "prop",
		N:        n,
		M:        m,
		Profit:   make([]float64, n),
		Weight:   make([][]float64, m),
		Capacity: make([]float64, m),
	}
	for j := 0; j < n; j++ {
		ins.Profit[j] = float64(r.IntRange(1, 100))
	}
	for i := 0; i < m; i++ {
		ins.Weight[i] = make([]float64, n)
		total := 0.0
		for j := 0; j < n; j++ {
			ins.Weight[i][j] = float64(r.IntRange(1, 50))
			total += ins.Weight[i][j]
		}
		ins.Capacity[i] = math.Max(1, 0.4*total)
	}
	return ins
}

// bruteBest enumerates the true optimum for small n.
func bruteBest(ins *mkp.Instance) float64 {
	best := 0.0
	for mask := 0; mask < 1<<uint(ins.N); mask++ {
		ok := true
		for i := 0; i < ins.M && ok; i++ {
			load := 0.0
			for j := 0; j < ins.N; j++ {
				if mask&(1<<uint(j)) != 0 {
					load += ins.Weight[i][j]
				}
			}
			if load > ins.Capacity[i] {
				ok = false
			}
		}
		if !ok {
			continue
		}
		v := 0.0
		for j := 0; j < ins.N; j++ {
			if mask&(1<<uint(j)) != 0 {
				v += ins.Profit[j]
			}
		}
		if v > best {
			best = v
		}
	}
	return best
}

func TestLPBoundDominatesOptimum(t *testing.T) {
	ins := tiny()
	ub, err := LP(ins)
	if err != nil {
		t.Fatal(err)
	}
	if opt := bruteBest(ins); ub < opt-1e-9 {
		t.Fatalf("LP bound %v below optimum %v", ub, opt)
	}
}

func TestDantzigKnownValue(t *testing.T) {
	// Constraint 0 of tiny: weights (3,2,1,4), cap 6, profits (10,6,4,7).
	// Ratios: 10/3, 6/2=3, 4/1=4, 7/4=1.75 → order: 2 (4), 0 (3.33), 1 (3), 3.
	// Pack item 2 (w1, cap 5 left), item 0 (w3, cap 2), item 1 (w2, cap 0),
	// item 3 fractional 0 → value 4+10+6 = 20.
	got := Dantzig(tiny(), 0)
	if math.Abs(got-20) > 1e-9 {
		t.Fatalf("Dantzig(0) = %v, want 20", got)
	}
}

func TestDantzigFreeItems(t *testing.T) {
	ins := tiny()
	ins.Weight[0][2] = 0 // item 2 free under constraint 0
	got := Dantzig(ins, 0)
	// item 2 counted fully (4); then ratios 10/3, 3, 1.75 on cap 6:
	// item 0 (cap 3), item 1 (cap 1), item 3 fraction 1/4 → 4+10+6+7/4.
	want := 4 + 10 + 6 + 7.0/4.0
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("Dantzig with free item = %v, want %v", got, want)
	}
}

func TestSurrogateMinDominates(t *testing.T) {
	ins := tiny()
	if sm := SurrogateMin(ins); sm < bruteBest(ins)-1e-9 {
		t.Fatalf("SurrogateMin %v below optimum", sm)
	}
}

func TestSurrogateZeroMultipliersFallback(t *testing.T) {
	ins := tiny()
	s := NewSurrogate(ins, []float64{0, 0})
	// Uniform fallback: Cap = 6+5, weights = column sums.
	if s.Cap != 11 {
		t.Fatalf("fallback Cap = %v, want 11", s.Cap)
	}
	if s.W[0] != 5 {
		t.Fatalf("fallback W[0] = %v, want 5", s.W[0])
	}
}

func TestSurrogateBoundDominates(t *testing.T) {
	ins := tiny()
	opt := bruteBest(ins)
	for _, y := range [][]float64{{1, 1}, {2, 0.5}, {0, 1}, {0, 0}} {
		s := NewSurrogate(ins, y)
		ub := s.Bound(0, s.Cap, func(j int) bool { return true })
		if ub < opt-1e-9 {
			t.Fatalf("surrogate bound %v with y=%v below optimum %v", ub, y, opt)
		}
	}
}

func TestSurrogateOrderPermutation(t *testing.T) {
	ins := tiny()
	s := NewSurrogate(ins, []float64{1, 1})
	seen := make([]bool, ins.N)
	for _, j := range s.Order() {
		if j < 0 || j >= ins.N || seen[j] {
			t.Fatalf("Order not a permutation: %v", s.Order())
		}
		seen[j] = true
	}
}

func TestQuickBoundsDominateOptimum(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		ins := randomInstance(r, r.IntRange(1, 12), r.IntRange(1, 4))
		opt := bruteBest(ins)
		ub, err := LP(ins)
		if err != nil || ub < opt-1e-6 {
			return false
		}
		if SurrogateMin(ins) < opt-1e-6 {
			return false
		}
		y := make([]float64, ins.M)
		for i := range y {
			y[i] = r.Float64() * 3
		}
		s := NewSurrogate(ins, y)
		return s.Bound(0, s.Cap, func(int) bool { return true }) >= opt-1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickLPTighterThanSurrogateMin(t *testing.T) {
	// Each Dantzig bound relaxes all constraints but one, so the LP (which
	// keeps them all) satisfies LP <= Dantzig(i) for every i, hence
	// LP <= SurrogateMin.
	f := func(seed uint64) bool {
		r := rng.New(seed)
		ins := randomInstance(r, r.IntRange(1, 20), r.IntRange(1, 5))
		ub, err := LP(ins)
		if err != nil {
			return false
		}
		return ub <= SurrogateMin(ins)+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestLPErrorPropagates(t *testing.T) {
	// A structurally valid instance cannot make the LP fail, so drive the
	// error path with a direct malformed call through the package under
	// test: zero items is rejected by Validate upstream, so corrupt the
	// instance after construction.
	ins := tiny()
	ins.N = 0
	ins.Profit = nil
	if _, err := LP(ins); err == nil {
		t.Fatal("LP accepted an empty problem")
	}
}
