// Package bound computes upper bounds on the 0-1 MKP optimum. The experiment
// harness uses the LP relaxation bound as the reference value for the paper's
// "Dev. in %" column, and the exact branch-and-bound drives its pruning with
// the surrogate (dual-weighted) Dantzig bound derived here.
package bound

import (
	"math"
	"sort"

	"repro/internal/lp"
	"repro/internal/mkp"
)

// LP returns the linear-relaxation upper bound of the instance.
func LP(ins *mkp.Instance) (float64, error) {
	res, err := lp.Solve(ins.Profit, ins.Weight, ins.Capacity)
	if err != nil {
		return 0, err
	}
	return res.Value, nil
}

// Dantzig returns the continuous single-constraint bound for constraint i,
// ignoring all other constraints: pack items by decreasing c_j/a_ij until b_i
// is exhausted, taking the last item fractionally. Items with a_ij = 0 are
// free under this constraint and counted fully.
func Dantzig(ins *mkp.Instance, i int) float64 {
	type item struct {
		c, a float64
	}
	items := make([]item, 0, ins.N)
	value := 0.0
	for j := 0; j < ins.N; j++ {
		a := ins.Weight[i][j]
		if a == 0 {
			value += ins.Profit[j]
			continue
		}
		items = append(items, item{ins.Profit[j], a})
	}
	sort.Slice(items, func(x, y int) bool {
		return items[x].c*items[y].a > items[y].c*items[x].a // c/a desc without division
	})
	cap := ins.Capacity[i]
	for _, it := range items {
		if it.a <= cap {
			value += it.c
			cap -= it.a
			continue
		}
		value += it.c * cap / it.a
		break
	}
	return value
}

// SurrogateMin returns min_i Dantzig(ins, i): each single-constraint bound is
// valid, so the minimum is too. It is the cheap bound used before the LP is
// available.
func SurrogateMin(ins *mkp.Instance) float64 {
	best := math.Inf(1)
	for i := 0; i < ins.M; i++ {
		if d := Dantzig(ins, i); d < best {
			best = d
		}
	}
	return best
}

// Surrogate is a single aggregated knapsack constraint w·x <= W built from
// nonnegative multipliers (typically the LP duals): any x feasible for the
// MKP satisfies it, so its continuous knapsack bound dominates the optimum.
type Surrogate struct {
	W       []float64 // aggregated item weights, length n
	Cap     float64   // aggregated capacity
	order   []int     // items by decreasing c_j / w_j (w=0 first)
	profits []float64
}

// NewSurrogate aggregates the instance's constraints with the given
// nonnegative multipliers y (length m). If every multiplier is zero it falls
// back to uniform multipliers so the bound stays meaningful.
func NewSurrogate(ins *mkp.Instance, y []float64) *Surrogate {
	allZero := true
	for _, v := range y {
		if v > 0 {
			allZero = false
			break
		}
	}
	s := &Surrogate{
		W:       make([]float64, ins.N),
		profits: ins.Profit,
	}
	for i := 0; i < ins.M; i++ {
		mult := y[i]
		if allZero {
			mult = 1
		}
		s.Cap += mult * ins.Capacity[i]
		for j := 0; j < ins.N; j++ {
			s.W[j] += mult * ins.Weight[i][j]
		}
	}
	s.order = make([]int, ins.N)
	for j := range s.order {
		s.order[j] = j
	}
	sort.SliceStable(s.order, func(a, b int) bool {
		ja, jb := s.order[a], s.order[b]
		wa, wb := s.W[ja], s.W[jb]
		switch {
		case wa == 0 && wb == 0:
			return ins.Profit[ja] > ins.Profit[jb]
		case wa == 0:
			return true
		case wb == 0:
			return false
		default:
			return ins.Profit[ja]*wb > ins.Profit[jb]*wa
		}
	})
	return s
}

// Order returns the items sorted by decreasing surrogate efficiency; the
// branch-and-bound branches in this order.
func (s *Surrogate) Order() []int { return s.order }

// Bound returns the continuous knapsack bound over the free items given the
// residual surrogate capacity. free[j] must report whether item j is still
// undecided; fixedValue is the profit already locked in.
func (s *Surrogate) Bound(fixedValue, residualCap float64, free func(j int) bool) float64 {
	v := fixedValue
	cap := residualCap
	for _, j := range s.order {
		if !free(j) {
			continue
		}
		w := s.W[j]
		if w == 0 {
			v += s.profits[j]
			continue
		}
		if w <= cap {
			v += s.profits[j]
			cap -= w
			continue
		}
		if cap > 0 {
			v += s.profits[j] * cap / w
		}
		break
	}
	return v
}
