// Package backoff is the one retry-delay policy shared by every
// reconnect-style loop in the system: master→worker dials, elastic fleet
// joins, the reconciler's join-wait, and worker rejoin loops. Before it
// existed each loop grew its own constants and its own sleep; centralizing
// them keeps retry behavior uniform (exponential growth to a cap, plus
// jitter so a restarted fleet does not thundering-herd the master) and
// makes every sleep cancellable by context.
package backoff

import (
	"context"
	"hash/fnv"
	"time"

	"repro/internal/rng"
)

// Policy describes a jittered exponential backoff. Attempt k (0-based)
// nominally sleeps Base<<k clamped to Cap, then stretched or shrunk by up
// to Jitter (a fraction in [0,1]) of the nominal delay. A zero Jitter
// yields the exact exponential sequence — what deterministic tests want.
type Policy struct {
	Base   time.Duration
	Cap    time.Duration
	Jitter float64
}

// Timer starts a fresh attempt sequence over p. seed feeds the jitter
// stream: tests pass a fixed seed for reproducible schedules, production
// callers hash whatever identifies the peer (see Seed) so two workers
// rejoining the same master at the same instant still spread out.
func (p Policy) Timer(seed uint64) *Timer {
	return &Timer{pol: p, r: rng.New(seed)}
}

// Seed hashes an identifying string (typically a peer address) into a
// jitter seed, so each retry loop gets its own decorrelated stream without
// threading seed plumbing through every dial path.
func Seed(id string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(id))
	return h.Sum64()
}

// Timer yields successive delays for one retry loop. Not safe for
// concurrent use; each loop owns its own.
type Timer struct {
	pol     Policy
	r       *rng.Rand
	attempt int
}

// Attempt returns how many delays have been handed out so far.
func (t *Timer) Attempt() int { return t.attempt }

// Next returns the next delay in the sequence and advances the attempt
// counter. Delays never go negative regardless of Jitter.
func (t *Timer) Next() time.Duration {
	d := t.pol.Base
	if d <= 0 {
		d = time.Millisecond
	}
	for i := 0; i < t.attempt; i++ {
		d *= 2
		if t.pol.Cap > 0 && d >= t.pol.Cap {
			d = t.pol.Cap
			break
		}
	}
	if t.pol.Cap > 0 && d > t.pol.Cap {
		d = t.pol.Cap
	}
	t.attempt++
	if j := t.pol.Jitter; j > 0 {
		if j > 1 {
			j = 1
		}
		span := float64(d) * j
		d = time.Duration(float64(d) + span*(2*t.r.Float64()-1))
		if d < 0 {
			d = 0
		}
	}
	return d
}

// Sleep blocks for the next delay in the sequence or until ctx is done,
// whichever comes first, returning ctx.Err() in the latter case.
func (t *Timer) Sleep(ctx context.Context) error {
	return Sleep(ctx, t.Next())
}

// Sleep waits d or until ctx is done, returning ctx.Err() in that case.
// A non-positive d still observes an already-expired context, so retry
// loops cannot spin past a cancellation.
func Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-timer.C:
		return nil
	}
}
