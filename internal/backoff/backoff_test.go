package backoff

import (
	"context"
	"testing"
	"time"
)

func TestNextExponentialNoJitter(t *testing.T) {
	pol := Policy{Base: 25 * time.Millisecond, Cap: 200 * time.Millisecond}
	bo := pol.Timer(1)
	want := []time.Duration{25, 50, 100, 200, 200, 200}
	for i, w := range want {
		got := bo.Next()
		if got != w*time.Millisecond {
			t.Fatalf("attempt %d: got %v, want %v", i, got, w*time.Millisecond)
		}
	}
	if bo.Attempt() != len(want) {
		t.Fatalf("attempt counter = %d, want %d", bo.Attempt(), len(want))
	}
}

func TestNextJitterBoundsAndDeterminism(t *testing.T) {
	pol := Policy{Base: 40 * time.Millisecond, Cap: 320 * time.Millisecond, Jitter: 0.5}
	a, b := pol.Timer(7), pol.Timer(7)
	nominal := []time.Duration{40, 80, 160, 320, 320}
	for i, nom := range nominal {
		nomD := nom * time.Millisecond
		da, db := a.Next(), b.Next()
		if da != db {
			t.Fatalf("attempt %d: same seed diverged: %v vs %v", i, da, db)
		}
		lo := time.Duration(float64(nomD) * 0.5)
		hi := time.Duration(float64(nomD) * 1.5)
		if da < lo || da > hi {
			t.Fatalf("attempt %d: %v outside [%v, %v]", i, da, lo, hi)
		}
	}
	// A different seed should produce a different schedule somewhere.
	c := pol.Timer(8)
	a2 := pol.Timer(7)
	same := true
	for i := 0; i < 5; i++ {
		if a2.Next() != c.Next() {
			same = false
		}
	}
	if same {
		t.Fatal("distinct seeds produced identical jitter schedules")
	}
}

func TestNextNeverNegative(t *testing.T) {
	pol := Policy{Base: time.Nanosecond, Cap: time.Nanosecond, Jitter: 5} // clamped to 1
	bo := pol.Timer(3)
	for i := 0; i < 100; i++ {
		if d := bo.Next(); d < 0 {
			t.Fatalf("attempt %d: negative delay %v", i, d)
		}
	}
}

func TestZeroBaseDefaults(t *testing.T) {
	bo := Policy{}.Timer(1)
	if d := bo.Next(); d != time.Millisecond {
		t.Fatalf("zero-base first delay = %v, want 1ms", d)
	}
}

func TestSleepHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	began := time.Now()
	if err := Sleep(ctx, time.Minute); err != context.Canceled {
		t.Fatalf("Sleep on canceled ctx = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(began); elapsed > time.Second {
		t.Fatalf("Sleep blocked %v on a canceled context", elapsed)
	}
}

func TestSleepZeroStillObservesCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := Sleep(ctx, 0); err != context.Canceled {
		t.Fatalf("Sleep(ctx, 0) = %v, want context.Canceled", err)
	}
	if err := Sleep(context.Background(), 0); err != nil {
		t.Fatalf("Sleep(bg, 0) = %v, want nil", err)
	}
}

func TestTimerSleepReturnsAfterDelay(t *testing.T) {
	pol := Policy{Base: time.Millisecond, Cap: time.Millisecond}
	bo := pol.Timer(1)
	if err := bo.Sleep(context.Background()); err != nil {
		t.Fatalf("Sleep = %v", err)
	}
	if bo.Attempt() != 1 {
		t.Fatalf("attempt = %d after one Sleep", bo.Attempt())
	}
}

func TestSeedStable(t *testing.T) {
	if Seed("127.0.0.1:9000") != Seed("127.0.0.1:9000") {
		t.Fatal("Seed not stable for equal inputs")
	}
	if Seed("a") == Seed("b") {
		t.Fatal("Seed collided on trivially distinct inputs")
	}
}
