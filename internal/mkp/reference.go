package mkp

import (
	"fmt"
	"math"

	"repro/internal/bitset"
)

// NaiveState is the retained row-major reference evaluator: it implements
// exactly the same contract as State but reads the original Weight matrix
// with an M-way strided access per item, the layout the repository shipped
// with before the column-major kernel. It exists for two reasons:
//
//   - the differential property tests drive it and the optimized State
//     through identical move sequences and assert bit-identical values,
//     slacks, and feasibility flags, proving the kernel rewrite changed the
//     memory layout and nothing else;
//   - the kernel microbenchmarks (internal/bench, BENCH_kernel.json) report
//     its timings as the "before" baseline next to the optimized kernel.
//
// It is deliberately not optimized. Solvers must use State.
type NaiveState struct {
	Ins   *Instance
	X     *bitset.Set
	Value float64
	Slack []float64

	negative int
}

// NewNaiveState returns an empty reference state for ins. Unlike NewState it
// does not require or build the column-major layout.
func NewNaiveState(ins *Instance) *NaiveState {
	return &NaiveState{
		Ins:   ins,
		X:     bitset.New(ins.N),
		Slack: append([]float64(nil), ins.Capacity...),
	}
}

// Reset empties the assignment and restores full slack.
func (s *NaiveState) Reset() {
	s.X.Reset()
	s.Value = 0
	copy(s.Slack, s.Ins.Capacity)
	s.negative = 0
}

// Load overwrites the state with the given assignment.
func (s *NaiveState) Load(x *bitset.Set) {
	s.Reset()
	x.ForEach(func(j int) bool {
		s.Add(j)
		return true
	})
}

// Add packs item j, updating value and slacks row by row.
func (s *NaiveState) Add(j int) {
	if s.X.Get(j) {
		panic(fmt.Sprintf("mkp: NaiveState.Add(%d) but item already packed", j))
	}
	s.X.Set(j)
	s.Value += s.Ins.Profit[j]
	for i := 0; i < s.Ins.M; i++ {
		before := s.Slack[i]
		s.Slack[i] -= s.Ins.Weight[i][j]
		if before >= 0 && s.Slack[i] < 0 {
			s.negative++
		}
	}
}

// Drop removes item j, updating value and slacks row by row.
func (s *NaiveState) Drop(j int) {
	if !s.X.Get(j) {
		panic(fmt.Sprintf("mkp: NaiveState.Drop(%d) but item not packed", j))
	}
	s.X.Clear(j)
	s.Value -= s.Ins.Profit[j]
	for i := 0; i < s.Ins.M; i++ {
		before := s.Slack[i]
		s.Slack[i] += s.Ins.Weight[i][j]
		if before < 0 && s.Slack[i] >= 0 {
			s.negative--
		}
	}
}

// Fits reports whether item j can be added without violating any constraint.
func (s *NaiveState) Fits(j int) bool {
	for i := 0; i < s.Ins.M; i++ {
		if s.Ins.Weight[i][j] > s.Slack[i] {
			return false
		}
	}
	return true
}

// Feasible reports whether every constraint is satisfied.
func (s *NaiveState) Feasible() bool { return s.negative == 0 }

// Violation returns Σ_i max(0, −slack_i).
func (s *NaiveState) Violation() float64 {
	if s.negative == 0 {
		return 0
	}
	v := 0.0
	for _, sl := range s.Slack {
		if sl < 0 {
			v -= sl
		}
	}
	return v
}

// MostSaturated returns the index of the minimum-slack constraint, ties to
// the lowest index.
func (s *NaiveState) MostSaturated() int {
	best, bestSlack := 0, math.Inf(1)
	for i, sl := range s.Slack {
		if sl < bestSlack {
			best, bestSlack = i, sl
		}
	}
	return best
}

// FillGreedyNaive is the pre-pruning add phase: walk the utility ranking and
// probe every unpacked item with the full O(m) Fits, no quick reject. The
// AddPhase benchmark measures it against FillGreedy.
func FillGreedyNaive(s *NaiveState) {
	for _, j := range RankByUtility(s.Ins) {
		if !s.X.Get(j) && s.Fits(j) {
			s.Add(j)
		}
	}
}
