package mkp

import (
	"strings"
	"testing"
)

func TestReadORLibMulti(t *testing.T) {
	// Two instances in the official multi-problem layout.
	var sb strings.Builder
	sb.WriteString("2\n")
	a := tiny()
	if err := WriteORLib(&sb, a); err != nil {
		t.Fatal(err)
	}
	b := tiny()
	b.Profit[0] = 99
	if err := WriteORLib(&sb, b); err != nil {
		t.Fatal(err)
	}
	got, err := ReadORLibMulti(strings.NewReader(sb.String()), "mknap1")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d instances, want 2", len(got))
	}
	if got[0].Name != "mknap1#1" || got[1].Name != "mknap1#2" {
		t.Fatalf("names %q %q", got[0].Name, got[1].Name)
	}
	if got[0].Profit[0] != 10 || got[1].Profit[0] != 99 {
		t.Fatalf("instances mixed up: %v %v", got[0].Profit[0], got[1].Profit[0])
	}
}

func TestReadORLibMultiErrors(t *testing.T) {
	cases := map[string]string{
		"empty":            "",
		"zero count":       "0",
		"negative count":   "-3",
		"huge count":       "99999999",
		"truncated body":   "2\n4 2 0 10 6 4 7",
		"fractional count": "1.5",
	}
	for name, in := range cases {
		if _, err := ReadORLibMulti(strings.NewReader(in), name); err == nil {
			t.Errorf("%s: malformed file accepted", name)
		}
	}
}

func TestReadORLibMultiSingle(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("1 ")
	if err := WriteORLib(&sb, tiny()); err != nil {
		t.Fatal(err)
	}
	got, err := ReadORLibMulti(strings.NewReader(sb.String()), "one")
	if err != nil || len(got) != 1 {
		t.Fatalf("single-problem multi file: %v, %d", err, len(got))
	}
}
