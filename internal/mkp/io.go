package mkp

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
)

// ReadORLibMulti parses a file in the official OR-Library multi-problem
// layout used by mknap1/mknap2: the first token is the number K of problems,
// followed by K instances each in the single-instance layout documented on
// ReadORLib. Instance names are derived as name#k.
func ReadORLibMulti(r io.Reader, name string) ([]*Instance, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
	sc.Split(bufio.ScanWords)
	k, err := nextIntToken(sc)
	if err != nil {
		return nil, fmt.Errorf("mkp: reading problem count: %w", err)
	}
	if k <= 0 || k > 1_000_000 {
		return nil, fmt.Errorf("mkp: implausible problem count %d", k)
	}
	out := make([]*Instance, 0, k)
	for p := 0; p < k; p++ {
		ins, err := readOne(sc, fmt.Sprintf("%s#%d", name, p+1))
		if err != nil {
			return nil, fmt.Errorf("mkp: problem %d of %d: %w", p+1, k, err)
		}
		out = append(out, ins)
	}
	return out, nil
}

// ReadORLib parses one instance in the OR-Library "mknap" layout:
//
//	n m opt
//	c_1 ... c_n
//	a_11 ... a_1n
//	...
//	a_m1 ... a_mn
//	b_1 ... b_m
//
// Whitespace (including newlines) separates tokens freely, as in the
// published files. opt is stored as BestKnown; 0 means unknown.
func ReadORLib(r io.Reader, name string) (*Instance, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
	sc.Split(bufio.ScanWords)
	return readOne(sc, name)
}

// nextToken returns the next whitespace-separated number.
func nextToken(sc *bufio.Scanner) (float64, error) {
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return 0, err
		}
		return 0, io.ErrUnexpectedEOF
	}
	v, err := strconv.ParseFloat(sc.Text(), 64)
	if err != nil {
		return 0, fmt.Errorf("mkp: bad token %q: %v", sc.Text(), err)
	}
	return v, nil
}

// nextIntToken returns the next token, requiring it to be integral.
func nextIntToken(sc *bufio.Scanner) (int, error) {
	v, err := nextToken(sc)
	if err != nil {
		return 0, err
	}
	if v != float64(int(v)) {
		return 0, fmt.Errorf("mkp: expected integer, got %v", v)
	}
	return int(v), nil
}

// readOne consumes one instance from the token stream.
func readOne(sc *bufio.Scanner, name string) (*Instance, error) {
	n, err := nextIntToken(sc)
	if err != nil {
		return nil, fmt.Errorf("mkp: reading n: %w", err)
	}
	m, err := nextIntToken(sc)
	if err != nil {
		return nil, fmt.Errorf("mkp: reading m: %w", err)
	}
	opt, err := nextToken(sc)
	if err != nil {
		return nil, fmt.Errorf("mkp: reading opt: %w", err)
	}
	if n <= 0 || m <= 0 {
		return nil, fmt.Errorf("mkp: invalid header n=%d m=%d", n, m)
	}

	ins := &Instance{
		Name:      name,
		N:         n,
		M:         m,
		Profit:    make([]float64, n),
		Weight:    make([][]float64, m),
		Capacity:  make([]float64, m),
		BestKnown: opt,
	}
	for j := 0; j < n; j++ {
		if ins.Profit[j], err = nextToken(sc); err != nil {
			return nil, fmt.Errorf("mkp: reading profit %d: %w", j, err)
		}
	}
	for i := 0; i < m; i++ {
		ins.Weight[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			if ins.Weight[i][j], err = nextToken(sc); err != nil {
				return nil, fmt.Errorf("mkp: reading weight[%d][%d]: %w", i, j, err)
			}
		}
	}
	for i := 0; i < m; i++ {
		if ins.Capacity[i], err = nextToken(sc); err != nil {
			return nil, fmt.Errorf("mkp: reading capacity %d: %w", i, err)
		}
	}
	if err := ins.Validate(); err != nil {
		return nil, err
	}
	return ins, nil
}

// WriteORLib writes the instance in the OR-Library layout read by ReadORLib.
func WriteORLib(w io.Writer, ins *Instance) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%d %d %s\n", ins.N, ins.M, formatNum(ins.BestKnown))
	writeRow(bw, ins.Profit)
	for i := 0; i < ins.M; i++ {
		writeRow(bw, ins.Weight[i])
	}
	writeRow(bw, ins.Capacity)
	return bw.Flush()
}

func writeRow(w *bufio.Writer, row []float64) {
	for j, v := range row {
		if j > 0 {
			w.WriteByte(' ')
		}
		w.WriteString(formatNum(v))
	}
	w.WriteByte('\n')
}

// formatNum prints integral values without a decimal point, matching the
// published benchmark files, and everything else with full precision.
func formatNum(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
