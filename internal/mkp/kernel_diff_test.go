package mkp

import (
	"math/rand"
	"testing"

	"repro/internal/bitset"
)

// randInstance builds a random valid instance. Roughly a tenth of the weight
// entries are zero, exercising the MinWeight=0 quick-reject edge and items
// that are free under some constraints.
func randInstance(r *rand.Rand, n, m int) *Instance {
	ins := &Instance{
		Name:     "diff",
		N:        n,
		M:        m,
		Profit:   make([]float64, n),
		Weight:   make([][]float64, m),
		Capacity: make([]float64, m),
	}
	for j := 0; j < n; j++ {
		ins.Profit[j] = float64(1 + r.Intn(100))
	}
	for i := 0; i < m; i++ {
		ins.Weight[i] = make([]float64, n)
		total := 0.0
		for j := 0; j < n; j++ {
			if r.Intn(10) == 0 {
				ins.Weight[i][j] = 0
			} else {
				ins.Weight[i][j] = float64(1 + r.Intn(50))
			}
			total += ins.Weight[i][j]
		}
		ins.Capacity[i] = 1 + total*(0.2+0.3*r.Float64())
	}
	return ins
}

// assertStatesAgree compares every observable of the optimized and reference
// evaluators. The slacks must be bit-identical: both kernels apply the same
// float64 additions in the same order, only from different memory layouts.
func assertStatesAgree(t *testing.T, opt *State, ref *NaiveState, tag string) {
	t.Helper()
	if opt.Value != ref.Value {
		t.Fatalf("%s: value %v (optimized) != %v (reference)", tag, opt.Value, ref.Value)
	}
	if !opt.X.Equal(ref.X) {
		t.Fatalf("%s: assignments diverged", tag)
	}
	for i := range ref.Slack {
		if opt.Slack[i] != ref.Slack[i] {
			t.Fatalf("%s: slack[%d] %v (optimized) != %v (reference)", tag, i, opt.Slack[i], ref.Slack[i])
		}
	}
	if opt.Feasible() != ref.Feasible() {
		t.Fatalf("%s: feasible %v (optimized) != %v (reference)", tag, opt.Feasible(), ref.Feasible())
	}
	if opt.Violation() != ref.Violation() {
		t.Fatalf("%s: violation %v != %v", tag, opt.Violation(), ref.Violation())
	}
	if opt.MostSaturated() != ref.MostSaturated() {
		t.Fatalf("%s: most saturated %d != %d", tag, opt.MostSaturated(), ref.MostSaturated())
	}
	maxSlack := opt.MaxSlack()
	for j := 0; j < opt.Ins.N; j++ {
		if opt.X.Get(j) {
			continue
		}
		of, rf := opt.Fits(j), ref.Fits(j)
		if of != rf {
			t.Fatalf("%s: Fits(%d) %v (optimized) != %v (reference)", tag, j, of, rf)
		}
		// The quick-reject bound must never contradict a positive Fits.
		if opt.Ins.MinWeight[j] > maxSlack && of {
			t.Fatalf("%s: quick reject would skip item %d but Fits=true", tag, j)
		}
	}
}

// TestKernelDifferential drives the optimized column-major State and the
// naive row-major NaiveState through identical random Add/Drop/oscillation
// sequences — including deliberately infeasible excursions — and requires
// identical values, slacks, and feasibility flags at every step.
func TestKernelDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(20260806))
	shapes := [][2]int{{1, 1}, {1, 5}, {5, 1}, {7, 3}, {30, 10}, {80, 25}, {200, 5}}
	for _, sh := range shapes {
		n, m := sh[0], sh[1]
		for trial := 0; trial < 4; trial++ {
			ins := randInstance(r, n, m)
			if err := ins.Validate(); err != nil {
				t.Fatal(err)
			}
			opt, ref := NewState(ins), NewNaiveState(ins)
			steps := 200 + r.Intn(400)
			for step := 0; step < steps; step++ {
				j := r.Intn(n)
				switch {
				case opt.X.Get(j):
					opt.Drop(j)
					ref.Drop(j)
				case r.Intn(4) == 0:
					// Oscillation-style forced add: ignore feasibility so the
					// pair wanders through infeasible states too.
					opt.Add(j)
					ref.Add(j)
				case opt.Fits(j):
					opt.Add(j)
					ref.Add(j)
				default:
					opt.Add(j) // force it anyway: deeper infeasible excursion
					ref.Add(j)
				}
				if step%17 == 0 {
					assertStatesAgree(t, opt, ref, ins.Size())
				}
			}
			assertStatesAgree(t, opt, ref, ins.Size())

			// Load must agree with replaying the reference from scratch.
			x := bitset.New(n)
			for j := 0; j < n; j++ {
				if r.Intn(2) == 0 {
					x.Set(j)
				}
			}
			opt.Load(x)
			ref.Load(x)
			assertStatesAgree(t, opt, ref, ins.Size()+"/load")

			// Recompute must not drift: the incremental column walk applies
			// the same additions as the from-scratch rebuild.
			if drift := opt.Recompute(); drift != 0 {
				t.Fatalf("%s: Recompute drift %v after random walk", ins.Size(), drift)
			}
			assertStatesAgree(t, opt, ref, ins.Size()+"/recompute")
		}
	}
}

// TestKernelDifferentialGreedy checks that the pruned add phase packs exactly
// what the unpruned reference add phase packs.
func TestKernelDifferentialGreedy(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		n, m := 1+r.Intn(120), 1+r.Intn(20)
		ins := randInstance(r, n, m)
		if err := ins.Validate(); err != nil {
			t.Fatal(err)
		}
		got := Greedy(ins)

		ref := NewNaiveState(ins)
		FillGreedyNaive(ref)
		if got.Value != ref.Value || !got.X.Equal(ref.X) {
			t.Fatalf("n=%d m=%d: pruned greedy %v differs from reference %v", n, m, got.Value, ref.Value)
		}

		// FillGreedy from a random feasible prefix must match the naive fill.
		opt := NewState(ins)
		ref.Reset()
		for j := 0; j < n; j++ {
			if r.Intn(3) == 0 && opt.Fits(j) {
				opt.Add(j)
				ref.Add(j)
			}
		}
		FillGreedy(opt)
		FillGreedyNaive(ref)
		if opt.Value != ref.Value || !opt.X.Equal(ref.X) {
			t.Fatalf("n=%d m=%d: pruned fill %v differs from reference %v", n, m, opt.Value, ref.Value)
		}
	}
}

// TestFinalizeDerivedLayout pins the derived arrays to the row-major source.
func TestFinalizeDerivedLayout(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	ins := randInstance(r, 13, 4)
	ins.Finalize()
	if len(ins.WeightCol) != 13*4 {
		t.Fatalf("WeightCol has %d entries, want %d", len(ins.WeightCol), 13*4)
	}
	for j := 0; j < ins.N; j++ {
		col := ins.ItemWeights(j)
		minW, heaviest := col[0], 0
		for i := 0; i < ins.M; i++ {
			if col[i] != ins.Weight[i][j] {
				t.Fatalf("WeightCol[%d*M+%d] = %v, want Weight[%d][%d] = %v", j, i, col[i], i, j, ins.Weight[i][j])
			}
			if col[i] < minW {
				minW = col[i]
			}
			if col[i] > col[heaviest] {
				heaviest = i
			}
		}
		if ins.MinWeight[j] != minW {
			t.Fatalf("MinWeight[%d] = %v, want %v", j, ins.MinWeight[j], minW)
		}
		if ins.HeaviestIn[j] != int32(heaviest) {
			t.Fatalf("HeaviestIn[%d] = %d, want %d", j, ins.HeaviestIn[j], heaviest)
		}
	}
	// Clone carries an equivalent finalized layout.
	c := ins.Clone()
	for k, v := range ins.WeightCol {
		if c.WeightCol[k] != v {
			t.Fatal("Clone dropped the column-major layout")
		}
	}
}
