package mkp

import (
	"os"
	"strings"
	"testing"
)

func TestReadChuBeasleyFixture(t *testing.T) {
	f, err := os.Open("testdata/cb_tiny.dat")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	instances, err := ReadChuBeasley(f, "cb_tiny.dat")
	if err != nil {
		t.Fatal(err)
	}
	if len(instances) != 2 {
		t.Fatalf("got %d instances, want 2", len(instances))
	}

	a := instances[0]
	if a.Name != "cb_tiny.dat cb2.3-00" {
		t.Fatalf("first instance named %q", a.Name)
	}
	if a.N != 3 || a.M != 2 || a.BestKnown != 22 {
		t.Fatalf("first instance header n=%d m=%d opt=%v", a.N, a.M, a.BestKnown)
	}
	if a.Profit[1] != 12 || a.Weight[1][0] != 4 || a.Capacity[1] != 6 {
		t.Fatalf("first instance body misparsed: %+v", a)
	}
	// The fixture's opt field really is the instance optimum (3 items:
	// enumerate all assignments).
	if opt := bruteForce(a); opt != a.BestKnown {
		t.Fatalf("true optimum %v, fixture opt is %v", opt, a.BestKnown)
	}

	b := instances[1]
	if b.Name != "cb_tiny.dat cb1.4-01" {
		t.Fatalf("second instance named %q", b.Name)
	}
	if b.N != 4 || b.M != 1 || b.BestKnown != 0 {
		t.Fatalf("second instance header n=%d m=%d opt=%v (opt 0 means unknown)", b.N, b.M, b.BestKnown)
	}
	if b.Capacity[0] != 6 {
		t.Fatalf("second instance capacity %v", b.Capacity[0])
	}
}

// bruteForce enumerates every assignment of a tiny instance.
func bruteForce(ins *Instance) float64 {
	best := 0.0
	for mask := 0; mask < 1<<ins.N; mask++ {
		value := 0.0
		ok := true
		for i := 0; i < ins.M && ok; i++ {
			load := 0.0
			for j := 0; j < ins.N; j++ {
				if mask&(1<<j) != 0 {
					load += ins.Weight[i][j]
				}
			}
			ok = load <= ins.Capacity[i]
		}
		if !ok {
			continue
		}
		for j := 0; j < ins.N; j++ {
			if mask&(1<<j) != 0 {
				value += ins.Profit[j]
			}
		}
		if value > best {
			best = value
		}
	}
	return best
}

func TestReadChuBeasleyRejectsDamage(t *testing.T) {
	cases := map[string]string{
		"empty":         "",
		"zero-count":    "0",
		"huge-count":    "2000000",
		"truncated":     "2\n3 2 22\n10 12 7\n2 3 1\n",
		"non-numeric":   "1\n3 x 0\n",
		"bad-dimension": "1\n0 2 0\n",
	}
	for name, input := range cases {
		if _, err := ReadChuBeasley(strings.NewReader(input), name); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
