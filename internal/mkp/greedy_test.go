package mkp

import (
	"testing"
	"testing/quick"

	"repro/internal/bitset"
	"repro/internal/rng"
)

func TestRankByUtilityOrder(t *testing.T) {
	ins := tiny()
	order := RankByUtility(ins)
	if len(order) != ins.N {
		t.Fatalf("order has %d entries, want %d", len(order), ins.N)
	}
	for k := 1; k < len(order); k++ {
		if ins.PseudoUtility(order[k-1]) < ins.PseudoUtility(order[k]) {
			t.Fatalf("order not decreasing at %d: %v", k, order)
		}
	}
}

func TestGreedyFeasibleAndSane(t *testing.T) {
	ins := tiny()
	sol := Greedy(ins)
	if !IsFeasibleAssignment(ins, sol.X) {
		t.Fatal("Greedy produced infeasible solution")
	}
	if sol.Value != ValueOf(ins, sol.X) {
		t.Fatal("Greedy value inconsistent with assignment")
	}
	if sol.Value <= 0 {
		t.Fatal("Greedy packed nothing on a packable instance")
	}
}

func TestGreedyIsMaximal(t *testing.T) {
	ins := tiny()
	sol := Greedy(ins)
	st := NewState(ins)
	st.Load(sol.X)
	for j := 0; j < ins.N; j++ {
		if !st.X.Get(j) && st.Fits(j) {
			t.Fatalf("Greedy left fitting item %d unpacked", j)
		}
	}
}

func TestRandomizedGreedyFeasible(t *testing.T) {
	ins := tiny()
	r := rng.New(5)
	for trial := 0; trial < 50; trial++ {
		sol := RandomizedGreedy(ins, r, 3)
		if !IsFeasibleAssignment(ins, sol.X) {
			t.Fatal("RandomizedGreedy produced infeasible solution")
		}
	}
}

func TestRandomizedGreedyRCLOne(t *testing.T) {
	ins := tiny()
	want := Greedy(ins)
	got := RandomizedGreedy(ins, rng.New(1), 1)
	if got.Value != want.Value {
		t.Fatalf("rcl=1 value %v != greedy value %v", got.Value, want.Value)
	}
	// rcl < 1 is clamped.
	got = RandomizedGreedy(ins, rng.New(1), 0)
	if got.Value != want.Value {
		t.Fatal("rcl=0 not clamped to 1")
	}
}

func TestRandomFeasibleAlwaysFeasible(t *testing.T) {
	r := rng.New(7)
	for trial := 0; trial < 30; trial++ {
		ins := randomInstance(r, r.IntRange(1, 50), r.IntRange(1, 8))
		sol := RandomFeasible(ins, r)
		if !IsFeasibleAssignment(ins, sol.X) {
			t.Fatalf("trial %d: RandomFeasible infeasible", trial)
		}
	}
}

func TestRepairReachesFeasibility(t *testing.T) {
	ins := tiny()
	st := NewState(ins)
	full := bitset.New(ins.N)
	full.Fill()
	st.Load(full)
	if st.Feasible() {
		t.Fatal("test premise broken: full pack should be infeasible")
	}
	Repair(st)
	if !st.Feasible() {
		t.Fatal("Repair left state infeasible")
	}
}

func TestRepairNoopOnFeasible(t *testing.T) {
	ins := tiny()
	st := NewState(ins)
	st.Add(0)
	before := st.Snapshot()
	Repair(st)
	if !st.X.Equal(before.X) {
		t.Fatal("Repair modified a feasible state")
	}
}

func TestFillGreedyTopsUp(t *testing.T) {
	ins := tiny()
	st := NewState(ins)
	FillGreedy(st)
	for j := 0; j < ins.N; j++ {
		if !st.X.Get(j) && st.Fits(j) {
			t.Fatalf("FillGreedy left fitting item %d", j)
		}
	}
}

func TestQuickRepairAlwaysFeasible(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		ins := randomInstance(r, r.IntRange(1, 60), r.IntRange(1, 10))
		st := NewState(ins)
		x := bitset.New(ins.N)
		for j := 0; j < ins.N; j++ {
			if r.Bool(0.7) {
				x.Set(j)
			}
		}
		st.Load(x)
		Repair(st)
		return st.Feasible() && IsFeasibleAssignment(ins, st.X)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickGreedyFeasibleMaximal(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		ins := randomInstance(r, r.IntRange(1, 60), r.IntRange(1, 10))
		sol := Greedy(ins)
		if !IsFeasibleAssignment(ins, sol.X) {
			return false
		}
		st := NewState(ins)
		st.Load(sol.X)
		for j := 0; j < ins.N; j++ {
			if !st.X.Get(j) && st.Fits(j) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkGreedy(b *testing.B) {
	ins := randomInstance(rng.New(1), 500, 25)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Greedy(ins)
	}
}
