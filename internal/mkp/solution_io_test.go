package mkp

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/bitset"
	"repro/internal/rng"
)

func TestSolutionRoundTrip(t *testing.T) {
	ins := tiny()
	sol := Greedy(ins)
	var sb strings.Builder
	if err := WriteSolution(&sb, ins.Name, sol); err != nil {
		t.Fatal(err)
	}
	name, back, err := ReadSolution(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if name != ins.Name {
		t.Fatalf("name %q, want %q", name, ins.Name)
	}
	if back.Value != sol.Value || !back.X.Equal(sol.X) {
		t.Fatalf("round trip changed the solution: %+v vs %+v", back, sol)
	}
}

func TestReadSolutionErrors(t *testing.T) {
	cases := map[string]string{
		"empty":           "",
		"missing value":   "solution a\n",
		"bad value":       "solution a\nvalue abc\nitems 1\nx 1\n",
		"bad items":       "solution a\nvalue 1\nitems -2\nx 1\n",
		"length mismatch": "solution a\nvalue 1\nitems 3\nx 10\n",
		"bad bit":         "solution a\nvalue 1\nitems 2\nx 1z\n",
		"wrong key":       "answer a\nvalue 1\nitems 1\nx 1\n",
	}
	for name, in := range cases {
		if _, _, err := ReadSolution(strings.NewReader(in)); err == nil {
			t.Errorf("%s: malformed solution accepted", name)
		}
	}
}

func TestCheckSolutionValid(t *testing.T) {
	ins := tiny()
	sol := Greedy(ins)
	if err := CheckSolution(ins, sol); err != nil {
		t.Fatalf("valid solution rejected: %v", err)
	}
}

func TestCheckSolutionRejects(t *testing.T) {
	ins := tiny()
	good := Greedy(ins)

	nilX := Solution{Value: 1}
	if err := CheckSolution(ins, nilX); err == nil {
		t.Error("nil assignment accepted")
	}
	short := Solution{X: bitset.New(2), Value: 0}
	if err := CheckSolution(ins, short); err == nil {
		t.Error("wrong-length assignment accepted")
	}
	infeasible := Solution{X: bitset.FromIndices(4, []int{0, 3}), Value: 17}
	if err := CheckSolution(ins, infeasible); err == nil {
		t.Error("infeasible assignment accepted")
	}
	lied := Solution{X: good.X, Value: good.Value + 1}
	if err := CheckSolution(ins, lied); err == nil {
		t.Error("wrong declared value accepted")
	}
}

func TestQuickSolutionRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := r.IntRange(1, 80)
		x := bitset.New(n)
		for j := 0; j < n; j++ {
			if r.Bool(0.5) {
				x.Set(j)
			}
		}
		sol := Solution{X: x, Value: float64(r.IntRange(0, 100000))}
		var sb strings.Builder
		if err := WriteSolution(&sb, "q", sol); err != nil {
			return false
		}
		_, back, err := ReadSolution(strings.NewReader(sb.String()))
		if err != nil {
			return false
		}
		return back.Value == sol.Value && back.X.Equal(sol.X)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func FuzzReadORLib(f *testing.F) {
	var sb strings.Builder
	_ = WriteORLib(&sb, tiny())
	f.Add(sb.String())
	f.Add("")
	f.Add("2 1 0\n1 2\n1 1\n3\n")
	f.Add("4 2 0 10 6 4 7")
	f.Fuzz(func(t *testing.T, in string) {
		ins, err := ReadORLib(strings.NewReader(in), "fuzz")
		if err != nil {
			return // malformed input must fail cleanly, never panic
		}
		if verr := ins.Validate(); verr != nil {
			t.Fatalf("ReadORLib returned invalid instance: %v", verr)
		}
	})
}

func FuzzReadSolution(f *testing.F) {
	var sb strings.Builder
	_ = WriteSolution(&sb, "seed", Greedy(tiny()))
	f.Add(sb.String())
	f.Add("solution a\nvalue 1\nitems 2\nx 10\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, in string) {
		_, sol, err := ReadSolution(strings.NewReader(in))
		if err != nil {
			return
		}
		if sol.X == nil {
			t.Fatal("nil assignment without error")
		}
	})
}
