package mkp

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/bitset"
	"repro/internal/rng"
)

func TestStateAddDrop(t *testing.T) {
	st := NewState(tiny())
	st.Add(0)
	if st.Value != 10 {
		t.Fatalf("Value = %v, want 10", st.Value)
	}
	if st.Slack[0] != 3 || st.Slack[1] != 3 {
		t.Fatalf("Slack = %v, want [3 3]", st.Slack)
	}
	st.Add(1)
	if st.Value != 16 || st.Slack[0] != 1 || st.Slack[1] != 0 {
		t.Fatalf("after Add(1): value=%v slack=%v", st.Value, st.Slack)
	}
	if !st.Feasible() {
		t.Fatal("feasible state reported infeasible")
	}
	st.Drop(0)
	if st.Value != 6 || st.Slack[0] != 4 || st.Slack[1] != 2 {
		t.Fatalf("after Drop(0): value=%v slack=%v", st.Value, st.Slack)
	}
}

func TestStateDoubleAddPanics(t *testing.T) {
	st := NewState(tiny())
	st.Add(0)
	defer func() {
		if recover() == nil {
			t.Fatal("double Add did not panic")
		}
	}()
	st.Add(0)
}

func TestStateDropMissingPanics(t *testing.T) {
	st := NewState(tiny())
	defer func() {
		if recover() == nil {
			t.Fatal("Drop of unpacked item did not panic")
		}
	}()
	st.Drop(2)
}

func TestStateInfeasibleTracking(t *testing.T) {
	st := NewState(tiny())
	st.Add(0)
	st.Add(3) // loads (7,3): constraint 0 violated
	if st.Feasible() {
		t.Fatal("violated state reported feasible")
	}
	if v := st.Violation(); v != 1 {
		t.Fatalf("Violation = %v, want 1", v)
	}
	st.Drop(3)
	if !st.Feasible() || st.Violation() != 0 {
		t.Fatal("state did not recover feasibility after drop")
	}
}

func TestFits(t *testing.T) {
	st := NewState(tiny())
	st.Add(0)
	st.Add(1) // loads (5,5)
	if st.Fits(2) {
		t.Fatal("Fits(2) true but item 2 needs (1,3) with slack (1,0)")
	}
	st.Drop(1) // loads (3,2), slack (3,3)
	if !st.Fits(2) {
		t.Fatal("Fits(2) false with slack (3,3) and need (1,3)")
	}
}

func TestMostSaturated(t *testing.T) {
	st := NewState(tiny())
	st.Add(1) // slack (4, 2)
	if got := st.MostSaturated(); got != 1 {
		t.Fatalf("MostSaturated = %d, want 1", got)
	}
	st.Reset()
	st.Add(3) // slack (2, 4)
	if got := st.MostSaturated(); got != 0 {
		t.Fatalf("MostSaturated = %d, want 0", got)
	}
}

func TestLoadAndSnapshot(t *testing.T) {
	ins := tiny()
	x := bitset.FromIndices(ins.N, []int{0, 2})
	st := NewState(ins)
	st.Load(x)
	if st.Value != 14 {
		t.Fatalf("Load value = %v, want 14", st.Value)
	}
	snap := st.Snapshot()
	st.Drop(0)
	if snap.Value != 14 || !snap.X.Get(0) {
		t.Fatal("Snapshot not independent of later mutation")
	}
}

func TestResetRestores(t *testing.T) {
	st := NewState(tiny())
	st.Add(0)
	st.Add(3)
	st.Reset()
	if st.Value != 0 || !st.Feasible() || st.X.Count() != 0 {
		t.Fatal("Reset did not restore empty state")
	}
	for i, sl := range st.Slack {
		if sl != st.Ins.Capacity[i] {
			t.Fatalf("slack %d = %v after Reset", i, sl)
		}
	}
}

func TestRecomputeNoDrift(t *testing.T) {
	st := NewState(tiny())
	st.Add(0)
	st.Add(1)
	st.Drop(0)
	st.Add(2)
	if drift := st.Recompute(); drift > 1e-9 {
		t.Fatalf("incremental evaluator drifted by %v", drift)
	}
}

func TestIsFeasibleAssignmentAndValueOf(t *testing.T) {
	ins := tiny()
	good := bitset.FromIndices(4, []int{0, 1})
	bad := bitset.FromIndices(4, []int{0, 3})
	if !IsFeasibleAssignment(ins, good) {
		t.Fatal("feasible assignment rejected")
	}
	if IsFeasibleAssignment(ins, bad) {
		t.Fatal("infeasible assignment accepted")
	}
	if v := ValueOf(ins, good); v != 16 {
		t.Fatalf("ValueOf = %v, want 16", v)
	}
}

// randomInstance builds a valid random instance for property tests.
func randomInstance(r *rng.Rand, n, m int) *Instance {
	ins := &Instance{
		Name:     "prop",
		N:        n,
		M:        m,
		Profit:   make([]float64, n),
		Weight:   make([][]float64, m),
		Capacity: make([]float64, m),
	}
	for j := 0; j < n; j++ {
		ins.Profit[j] = float64(r.IntRange(1, 100))
	}
	for i := 0; i < m; i++ {
		ins.Weight[i] = make([]float64, n)
		total := 0.0
		for j := 0; j < n; j++ {
			ins.Weight[i][j] = float64(r.IntRange(1, 50))
			total += ins.Weight[i][j]
		}
		ins.Capacity[i] = math.Max(1, 0.5*total)
	}
	return ins
}

func TestQuickIncrementalMatchesScratch(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		ins := randomInstance(r, r.IntRange(1, 40), r.IntRange(1, 8))
		st := NewState(ins)
		// Random walk of adds/drops.
		for step := 0; step < 200; step++ {
			j := r.Intn(ins.N)
			if st.X.Get(j) {
				st.Drop(j)
			} else {
				st.Add(j)
			}
		}
		// Scratch evaluation must agree.
		wantV := ValueOf(ins, st.X)
		if math.Abs(wantV-st.Value) > 1e-6 {
			return false
		}
		wantFeasible := IsFeasibleAssignment(ins, st.X)
		if wantFeasible != st.Feasible() {
			return false
		}
		cp := st.Value
		if drift := st.Recompute(); drift > 1e-6 {
			return false
		}
		return math.Abs(cp-st.Value) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickViolationZeroIffFeasible(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		ins := randomInstance(r, r.IntRange(1, 30), r.IntRange(1, 6))
		st := NewState(ins)
		for step := 0; step < 50; step++ {
			j := r.Intn(ins.N)
			if st.X.Get(j) {
				st.Drop(j)
			} else {
				st.Add(j)
			}
			if (st.Violation() == 0) != st.Feasible() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkStateAddDrop(b *testing.B) {
	r := rng.New(1)
	ins := randomInstance(r, 500, 25)
	st := NewState(ins)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i % ins.N
		if st.X.Get(j) {
			st.Drop(j)
		} else {
			st.Add(j)
		}
	}
}
