// Package mkp models the 0-1 multidimensional knapsack problem:
//
//	max  Σ_j c_j x_j
//	s.t. Σ_j a_ij x_j <= b_i   (i = 1..m)
//	     x_j ∈ {0,1}           (j = 1..n)
//
// with all a_ij, b_i, c_j positive, exactly as defined in Niar & Fréville
// (IPPS 1997, §1). The package provides the instance representation, an
// incremental solution evaluator (the tabu-search hot path), greedy
// construction and repair heuristics, and OR-Library-format I/O.
package mkp

import (
	"errors"
	"fmt"
	"math"
	"sync"
)

// Instance is an immutable 0-1 MKP instance. Weight is indexed [constraint][item].
// BestKnown, when positive, records a reference objective value (an optimum
// from the exact solver or a best-known bound) used for deviation reporting;
// zero means unknown.
//
// The evaluator hot path (State.Add/Drop/Fits) never reads the row-major
// Weight matrix: Finalize derives a flattened column-major copy plus per-item
// pruning bounds, so one item's M coefficients are a single contiguous cache
// run instead of M strided slice lookups. Weight remains the canonical
// representation for I/O, validation, and column-indexed readers (bounds,
// reduction, drop scoring). An instance must not be mutated after Finalize
// (equivalently, after its first Validate or its first use by a solver).
type Instance struct {
	Name      string
	N         int         // number of items (variables)
	M         int         // number of constraints (dimensions)
	Profit    []float64   // c_j, length N
	Weight    [][]float64 // a_ij, M rows of length N
	Capacity  []float64   // b_i, length M
	BestKnown float64

	// Derived, built once by Finalize (nil until then).
	WeightCol  []float64 // column-major a_ij: item j's M weights at [j*M:(j+1)*M]
	MinWeight  []float64 // min_i a_ij per item: quick-reject bound for Fits
	HeaviestIn []int32   // argmax_i a_ij per item: the constraint most likely to reject j

	// Blocked layout for the word-parallel Fits scan: PadM is M rounded up
	// to a multiple of fitsBlock, and WeightColPad holds item j's column at
	// [j*PadM:(j+1)*PadM] padded with zero weights (a zero weight can never
	// exceed a slack pad of +Inf, so the unrolled k-wide compare needs no
	// remainder loop).
	PadM         int
	WeightColPad []float64

	utilRank   []int     // items by decreasing pseudo-utility (shared, read-only)
	rankSufMin []float64 // suffix min of MinWeight along utilRank (scan early exit)
	finalize   sync.Once
}

// fitsBlock is the unroll width of the word-parallel Fits scan; PadM is a
// multiple of it so the compare loop has no scalar remainder.
const fitsBlock = 4

// Finalize builds the derived column-major layout and pruning bounds. It is
// idempotent and safe for concurrent callers (the first caller builds, the
// rest wait), so every solver entry point can call it defensively. Validate
// and NewState both invoke it; constructors that bypass Validate (tests,
// generators) get finalized on first evaluator use.
func (ins *Instance) Finalize() {
	ins.finalize.Do(func() {
		m, n := ins.M, ins.N
		col := make([]float64, n*m)
		minW := make([]float64, n)
		heaviest := make([]int32, n)
		for j := 0; j < n; j++ {
			base := j * m
			lo, hi, hiAt := 0.0, -1.0, int32(0)
			for i := 0; i < m; i++ {
				a := ins.Weight[i][j]
				col[base+i] = a
				if i == 0 || a < lo {
					lo = a
				}
				if a > hi {
					hi, hiAt = a, int32(i)
				}
			}
			minW[j] = lo
			heaviest[j] = hiAt
		}
		ins.WeightCol = col
		ins.MinWeight = minW
		ins.HeaviestIn = heaviest

		pm := (m + fitsBlock - 1) &^ (fitsBlock - 1)
		pad := make([]float64, n*pm) // pads stay 0: a zero weight never rejects
		for j := 0; j < n; j++ {
			copy(pad[j*pm:j*pm+m], col[j*m:(j+1)*m])
		}
		ins.PadM = pm
		ins.WeightColPad = pad

		ins.utilRank = rankByUtility(ins)
		ins.rankSufMin = SuffixMinWeight(ins, ins.utilRank)
	})
}

// SuffixMinWeight returns suf aligned with order, where suf[k] is the minimum
// MinWeight over the tail order[k:]. A scan that walks order against a
// non-increasing slack bound can stop at the first k with suf[k] > maxSlack:
// every remaining candidate would fail the MinWeight quick reject anyway, so
// the early exit is behavior-preserving. The instance must be finalized (or
// being finalized, as in the Finalize call itself, which runs after MinWeight
// is built).
func SuffixMinWeight(ins *Instance, order []int) []float64 {
	suf := make([]float64, len(order))
	min := math.Inf(1)
	for k := len(order) - 1; k >= 0; k-- {
		if w := ins.MinWeight[order[k]]; w < min {
			min = w
		}
		suf[k] = min
	}
	return suf
}

// ItemWeights returns item j's M coefficients as one contiguous slice of the
// column-major layout (read-only). The instance must be finalized.
func (ins *Instance) ItemWeights(j int) []float64 {
	return ins.WeightCol[j*ins.M : (j+1)*ins.M : (j+1)*ins.M]
}

// Validate checks structural consistency and the paper's positivity
// assumptions. Every solver in this repository calls it once up front so the
// hot paths can skip bounds and sign checks.
func (ins *Instance) Validate() error {
	if ins == nil {
		return errors.New("mkp: nil instance")
	}
	if ins.N <= 0 {
		return fmt.Errorf("mkp: instance %q has N=%d, want > 0", ins.Name, ins.N)
	}
	if ins.M <= 0 {
		return fmt.Errorf("mkp: instance %q has M=%d, want > 0", ins.Name, ins.M)
	}
	if len(ins.Profit) != ins.N {
		return fmt.Errorf("mkp: instance %q has %d profits, want %d", ins.Name, len(ins.Profit), ins.N)
	}
	if len(ins.Capacity) != ins.M {
		return fmt.Errorf("mkp: instance %q has %d capacities, want %d", ins.Name, len(ins.Capacity), ins.M)
	}
	if len(ins.Weight) != ins.M {
		return fmt.Errorf("mkp: instance %q has %d weight rows, want %d", ins.Name, len(ins.Weight), ins.M)
	}
	for j, c := range ins.Profit {
		if !(c > 0) { // also rejects NaN
			return fmt.Errorf("mkp: instance %q profit[%d]=%v, want > 0", ins.Name, j, c)
		}
	}
	for i, row := range ins.Weight {
		if len(row) != ins.N {
			return fmt.Errorf("mkp: instance %q weight row %d has %d entries, want %d", ins.Name, i, len(row), ins.N)
		}
		for j, a := range row {
			if a < 0 || a != a {
				return fmt.Errorf("mkp: instance %q weight[%d][%d]=%v, want >= 0", ins.Name, i, j, a)
			}
		}
	}
	for i, b := range ins.Capacity {
		if !(b > 0) {
			return fmt.Errorf("mkp: instance %q capacity[%d]=%v, want > 0", ins.Name, i, b)
		}
	}
	ins.Finalize()
	return nil
}

// Size returns the conventional "m*n" label used in the paper's tables.
func (ins *Instance) Size() string {
	return fmt.Sprintf("%d*%d", ins.M, ins.N)
}

// Clone returns a deep copy of the instance.
func (ins *Instance) Clone() *Instance {
	c := &Instance{
		Name:      ins.Name,
		N:         ins.N,
		M:         ins.M,
		Profit:    append([]float64(nil), ins.Profit...),
		Capacity:  append([]float64(nil), ins.Capacity...),
		Weight:    make([][]float64, ins.M),
		BestKnown: ins.BestKnown,
	}
	for i, row := range ins.Weight {
		c.Weight[i] = append([]float64(nil), row...)
	}
	if ins.WeightCol != nil {
		c.Finalize()
	}
	return c
}

// TotalWeight returns Σ_j a_ij for constraint i: the row sum used by the
// Glover–Kochenberger-style capacity rule b_i = tightness·Σ_j a_ij.
func (ins *Instance) TotalWeight(i int) float64 {
	s := 0.0
	for _, a := range ins.Weight[i] {
		s += a
	}
	return s
}

// Tightness returns b_i / Σ_j a_ij for constraint i, the standard hardness
// knob for generated MKP instances.
func (ins *Instance) Tightness(i int) float64 {
	tw := ins.TotalWeight(i)
	if tw == 0 {
		return 1
	}
	return ins.Capacity[i] / tw
}

// PseudoUtility returns c_j divided by the capacity-normalized aggregate
// weight of item j, the classic bang-for-buck score used by the greedy
// constructor and the Add phase of the tabu move:
//
//	u_j = c_j / Σ_i (a_ij / b_i)
//
// Items that consume nothing (all a_ij = 0) get +Inf via a tiny denominator
// guard, so they sort first and are always packed.
func (ins *Instance) PseudoUtility(j int) float64 {
	d := 0.0
	for i := 0; i < ins.M; i++ {
		d += ins.Weight[i][j] / ins.Capacity[i]
	}
	if d <= 0 {
		d = 1e-300
	}
	return ins.Profit[j] / d
}

// BurdenRatio returns Σ_i a_ij / c_j for item j: the "less interesting
// objects ... with large Σ_i a_ij/c_j ratio" score the paper's strategic
// oscillation uses to project infeasible solutions back into the feasible
// domain (§3.2).
func (ins *Instance) BurdenRatio(j int) float64 {
	s := 0.0
	for i := 0; i < ins.M; i++ {
		s += ins.Weight[i][j]
	}
	return s / ins.Profit[j]
}
