package mkp

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestPermuteItemsValidation(t *testing.T) {
	ins := tiny()
	if _, err := PermuteItems(ins, []int{0, 1}); err == nil {
		t.Fatal("short permutation accepted")
	}
	if _, err := PermuteItems(ins, []int{0, 1, 2, 2}); err == nil {
		t.Fatal("duplicate entry accepted")
	}
	if _, err := PermuteItems(ins, []int{0, 1, 2, 9}); err == nil {
		t.Fatal("out-of-range entry accepted")
	}
}

func TestPermuteItemsIdentity(t *testing.T) {
	ins := tiny()
	id := []int{0, 1, 2, 3}
	out, err := PermuteItems(ins, id)
	if err != nil {
		t.Fatal(err)
	}
	for j := range ins.Profit {
		if out.Profit[j] != ins.Profit[j] {
			t.Fatal("identity permutation changed profits")
		}
	}
}

func TestPermuteSolutionRoundTrip(t *testing.T) {
	ins := tiny()
	perm := []int{2, 0, 3, 1}
	permuted, err := PermuteItems(ins, perm)
	if err != nil {
		t.Fatal(err)
	}
	// Solve greedily on the permuted instance, map back, and re-evaluate on
	// the original: the value must be preserved and the assignment feasible.
	sol := Greedy(permuted)
	back, err := PermuteSolution(sol, perm)
	if err != nil {
		t.Fatal(err)
	}
	if got := ValueOf(ins, back.X); got != sol.Value {
		t.Fatalf("mapped value %v != %v", got, sol.Value)
	}
	if !IsFeasibleAssignment(ins, back.X) {
		t.Fatal("mapped solution infeasible on the original")
	}
}

func TestQuickPermutationPreservesGreedyFeasibility(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		ins := randomInstance(r, r.IntRange(2, 40), r.IntRange(1, 6))
		perm := make([]int, ins.N)
		r.Perm(perm)
		permuted, err := PermuteItems(ins, perm)
		if err != nil || permuted.Validate() != nil {
			return false
		}
		sol := Greedy(permuted)
		back, err := PermuteSolution(sol, perm)
		if err != nil {
			return false
		}
		return IsFeasibleAssignment(ins, back.X) && ValueOf(ins, back.X) == sol.Value
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
