package mkp

import (
	"testing"

	"repro/internal/rng"
)

// nothingFits returns an instance where no single item can be packed.
func nothingFits() *Instance {
	return &Instance{
		Name:     "nothing-fits",
		N:        3,
		M:        2,
		Profit:   []float64{10, 20, 30},
		Weight:   [][]float64{{5, 6, 7}, {9, 9, 9}},
		Capacity: []float64{4, 8},
	}
}

func TestGreedyOnNothingFits(t *testing.T) {
	sol := Greedy(nothingFits())
	if sol.Value != 0 || sol.X.Count() != 0 {
		t.Fatalf("greedy packed something impossible: %+v", sol)
	}
}

func TestRandomFeasibleOnNothingFits(t *testing.T) {
	sol := RandomFeasible(nothingFits(), rng.New(1))
	if sol.X.Count() != 0 {
		t.Fatal("random feasible packed an impossible item")
	}
}

func TestStateOnSingleItem(t *testing.T) {
	ins := &Instance{
		Name: "one", N: 1, M: 1,
		Profit: []float64{7}, Weight: [][]float64{{3}}, Capacity: []float64{3},
	}
	if err := ins.Validate(); err != nil {
		t.Fatal(err)
	}
	st := NewState(ins)
	if !st.Fits(0) {
		t.Fatal("exact-fit item rejected")
	}
	st.Add(0)
	if st.Slack[0] != 0 || !st.Feasible() {
		t.Fatalf("exact fit leaves slack %v feasible %v", st.Slack[0], st.Feasible())
	}
	if st.Fits(0) {
		// Fits on an already-packed item is not meaningful but must not
		// report true capacity-wise; slack is 0 and weight 3.
		t.Fatal("Fits(0) true with zero slack")
	}
}

func TestGreedyAllItemsFit(t *testing.T) {
	ins := &Instance{
		Name: "loose", N: 4, M: 1,
		Profit:   []float64{1, 2, 3, 4},
		Weight:   [][]float64{{1, 1, 1, 1}},
		Capacity: []float64{100},
	}
	sol := Greedy(ins)
	if sol.X.Count() != 4 || sol.Value != 10 {
		t.Fatalf("greedy missed free items: %+v", sol)
	}
}

func TestRepairOnEmptyState(t *testing.T) {
	st := NewState(nothingFits())
	Repair(st) // no-op on feasible empty state
	if !st.Feasible() || st.X.Count() != 0 {
		t.Fatal("repair broke an empty state")
	}
}

func TestZeroWeightItemAlwaysPacked(t *testing.T) {
	ins := &Instance{
		Name: "free-item", N: 2, M: 1,
		Profit:   []float64{5, 9},
		Weight:   [][]float64{{0, 10}},
		Capacity: []float64{3},
	}
	if err := ins.Validate(); err != nil {
		t.Fatal(err)
	}
	sol := Greedy(ins)
	if !sol.X.Get(0) {
		t.Fatal("zero-weight item not packed")
	}
	if sol.X.Get(1) {
		t.Fatal("oversized item packed")
	}
}
