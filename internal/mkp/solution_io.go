package mkp

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/bitset"
)

// WriteSolution writes a solution in a small self-describing text layout:
//
//	solution <instance-name>
//	value <v>
//	items <n>
//	x <0/1 string, item 0 first>
//
// The format round-trips through ReadSolution and is easy to diff and to
// check by hand.
func WriteSolution(w io.Writer, instanceName string, sol Solution) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "solution %s\n", instanceName)
	fmt.Fprintf(bw, "value %s\n", formatNum(sol.Value))
	fmt.Fprintf(bw, "items %d\n", sol.X.Len())
	fmt.Fprintf(bw, "x %s\n", sol.X.String())
	return bw.Flush()
}

// ReadSolution parses the layout written by WriteSolution, returning the
// instance name recorded in the file and the solution.
func ReadSolution(r io.Reader) (instanceName string, sol Solution, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
	read := func(key string) (string, error) {
		if !sc.Scan() {
			if err := sc.Err(); err != nil {
				return "", err
			}
			return "", io.ErrUnexpectedEOF
		}
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, key+" ") && line != key {
			return "", fmt.Errorf("mkp: expected %q line, got %q", key, line)
		}
		return strings.TrimSpace(strings.TrimPrefix(line, key)), nil
	}

	if instanceName, err = read("solution"); err != nil {
		return "", Solution{}, err
	}
	valueStr, err := read("value")
	if err != nil {
		return "", Solution{}, err
	}
	value, err := strconv.ParseFloat(valueStr, 64)
	if err != nil {
		return "", Solution{}, fmt.Errorf("mkp: bad value %q: %v", valueStr, err)
	}
	nStr, err := read("items")
	if err != nil {
		return "", Solution{}, err
	}
	n, err := strconv.Atoi(nStr)
	if err != nil || n < 0 {
		return "", Solution{}, fmt.Errorf("mkp: bad items count %q", nStr)
	}
	bits, err := read("x")
	if err != nil {
		return "", Solution{}, err
	}
	if len(bits) != n {
		return "", Solution{}, fmt.Errorf("mkp: x has %d bits, items says %d", len(bits), n)
	}
	x := bitset.New(n)
	for j, c := range bits {
		switch c {
		case '1':
			x.Set(j)
		case '0':
		default:
			return "", Solution{}, fmt.Errorf("mkp: bad bit %q at position %d", c, j)
		}
	}
	return instanceName, Solution{X: x, Value: value}, nil
}

// CheckSolution verifies a solution against an instance: length match,
// feasibility, and value consistency. It returns a descriptive error on the
// first violation, nil when the solution is valid.
func CheckSolution(ins *Instance, sol Solution) error {
	if sol.X == nil {
		return fmt.Errorf("mkp: solution has no assignment")
	}
	if sol.X.Len() != ins.N {
		return fmt.Errorf("mkp: solution has %d items, instance %q has %d", sol.X.Len(), ins.Name, ins.N)
	}
	for i := 0; i < ins.M; i++ {
		load := 0.0
		sol.X.ForEach(func(j int) bool {
			load += ins.Weight[i][j]
			return true
		})
		if load > ins.Capacity[i]+1e-6 {
			return fmt.Errorf("mkp: constraint %d violated: load %v > capacity %v", i, load, ins.Capacity[i])
		}
	}
	if got := ValueOf(ins, sol.X); got != sol.Value {
		// Exact comparison is intended: values are sums of the instance's own
		// profit entries, so a matching assignment reproduces the value bit
		// for bit.
		return fmt.Errorf("mkp: declared value %v but assignment is worth %v", sol.Value, got)
	}
	return nil
}
