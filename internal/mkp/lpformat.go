package mkp

import (
	"bufio"
	"fmt"
	"io"
)

// WriteLPFormat writes the instance as a CPLEX LP-format model:
//
//	Maximize
//	 obj: 10 x0 + 6 x1 + ...
//	Subject To
//	 c0: 3 x0 + 2 x1 + ... <= 6
//	Binaries
//	 x0 x1 ...
//	End
//
// The format is read by CPLEX, Gurobi, SCIP, HiGHS, lp_solve and glpsol, so
// any solution produced here can be cross-checked against an independent
// solver (and vice versa).
func WriteLPFormat(w io.Writer, ins *Instance) error {
	if err := ins.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "\\ %s (%s) exported by pts\n", ins.Name, ins.Size())
	fmt.Fprintln(bw, "Maximize")
	bw.WriteString(" obj:")
	writeTerms(bw, ins.Profit)
	fmt.Fprintln(bw, "\nSubject To")
	for i := 0; i < ins.M; i++ {
		fmt.Fprintf(bw, " c%d:", i)
		writeTerms(bw, ins.Weight[i])
		fmt.Fprintf(bw, " <= %s\n", formatNum(ins.Capacity[i]))
	}
	fmt.Fprintln(bw, "Binaries")
	line := 0
	for j := 0; j < ins.N; j++ {
		fmt.Fprintf(bw, " x%d", j)
		line++
		if line == 16 {
			bw.WriteByte('\n')
			line = 0
		}
	}
	if line != 0 {
		bw.WriteByte('\n')
	}
	fmt.Fprintln(bw, "End")
	return bw.Flush()
}

// writeTerms emits " + c_j xj" terms, skipping zero coefficients (LP format
// forbids them in constraints).
func writeTerms(bw *bufio.Writer, coeffs []float64) {
	first := true
	for j, c := range coeffs {
		if c == 0 {
			continue
		}
		if first {
			fmt.Fprintf(bw, " %s x%d", formatNum(c), j)
			first = false
		} else {
			fmt.Fprintf(bw, " + %s x%d", formatNum(c), j)
		}
	}
	if first {
		// An all-zero row still needs a syntactically valid expression.
		bw.WriteString(" 0 x0")
	}
}
