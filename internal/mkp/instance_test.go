package mkp

import (
	"math"
	"strings"
	"testing"
)

// tiny returns a hand-checked 2-constraint, 4-item instance:
//
//	max 10x0 + 6x1 + 4x2 + 7x3
//	 3x0 + 2x1 + 1x2 + 4x3 <= 6
//	 2x0 + 3x1 + 3x2 + 1x3 <= 5
//
// Optimum is x = (1,0,0,1) → value 17 (loads 7>6? no: 3+4=7 — infeasible).
// Enumerate: feasible maxima: {0,1}: loads (5,5) value 16; {0,2}: (4,5) v14;
// {0,3}: (7,3) infeasible; {1,2,3}: (7,7) infeasible; {1,3}: (6,4) v13;
// {2,3}: (5,4) v11; {0,1,2}: (6,8) infeasible. Optimum = {0,1} value 16.
func tiny() *Instance {
	return &Instance{
		Name:   "tiny",
		N:      4,
		M:      2,
		Profit: []float64{10, 6, 4, 7},
		Weight: [][]float64{
			{3, 2, 1, 4},
			{2, 3, 3, 1},
		},
		Capacity:  []float64{6, 5},
		BestKnown: 16,
	}
}

func TestValidateOK(t *testing.T) {
	if err := tiny().Validate(); err != nil {
		t.Fatalf("valid instance rejected: %v", err)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := map[string]func(*Instance){
		"zero N":            func(i *Instance) { i.N = 0 },
		"zero M":            func(i *Instance) { i.M = 0 },
		"short profit":      func(i *Instance) { i.Profit = i.Profit[:2] },
		"short capacity":    func(i *Instance) { i.Capacity = i.Capacity[:1] },
		"short weight rows": func(i *Instance) { i.Weight = i.Weight[:1] },
		"ragged weight row": func(i *Instance) { i.Weight[1] = i.Weight[1][:3] },
		"zero profit":       func(i *Instance) { i.Profit[0] = 0 },
		"negative profit":   func(i *Instance) { i.Profit[2] = -1 },
		"NaN profit":        func(i *Instance) { i.Profit[1] = math.NaN() },
		"negative weight":   func(i *Instance) { i.Weight[0][1] = -3 },
		"NaN weight":        func(i *Instance) { i.Weight[1][2] = math.NaN() },
		"zero capacity":     func(i *Instance) { i.Capacity[0] = 0 },
		"negative capacity": func(i *Instance) { i.Capacity[1] = -2 },
	}
	for name, mutate := range cases {
		ins := tiny()
		mutate(ins)
		if err := ins.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a broken instance", name)
		}
	}
	var nilIns *Instance
	if err := nilIns.Validate(); err == nil {
		t.Error("nil instance accepted")
	}
}

func TestSizeLabel(t *testing.T) {
	if got := tiny().Size(); got != "2*4" {
		t.Fatalf("Size = %q, want 2*4", got)
	}
}

func TestCloneDeep(t *testing.T) {
	a := tiny()
	b := a.Clone()
	b.Profit[0] = 99
	b.Weight[0][0] = 99
	b.Capacity[0] = 99
	if a.Profit[0] == 99 || a.Weight[0][0] == 99 || a.Capacity[0] == 99 {
		t.Fatal("Clone shares backing arrays")
	}
}

func TestTotalWeightAndTightness(t *testing.T) {
	ins := tiny()
	if got := ins.TotalWeight(0); got != 10 {
		t.Fatalf("TotalWeight(0) = %v, want 10", got)
	}
	if got := ins.Tightness(0); math.Abs(got-0.6) > 1e-12 {
		t.Fatalf("Tightness(0) = %v, want 0.6", got)
	}
}

func TestPseudoUtility(t *testing.T) {
	ins := tiny()
	// item 0: c=10, a/b = 3/6 + 2/5 = 0.9 → 10/0.9
	want := 10 / 0.9
	if got := ins.PseudoUtility(0); math.Abs(got-want) > 1e-9 {
		t.Fatalf("PseudoUtility(0) = %v, want %v", got, want)
	}
}

func TestBurdenRatio(t *testing.T) {
	ins := tiny()
	// item 3: (4+1)/7
	want := 5.0 / 7.0
	if got := ins.BurdenRatio(3); math.Abs(got-want) > 1e-12 {
		t.Fatalf("BurdenRatio(3) = %v, want %v", got, want)
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	ins := tiny()
	var sb strings.Builder
	if err := WriteORLib(&sb, ins); err != nil {
		t.Fatal(err)
	}
	back, err := ReadORLib(strings.NewReader(sb.String()), "tiny")
	if err != nil {
		t.Fatal(err)
	}
	if back.N != ins.N || back.M != ins.M || back.BestKnown != ins.BestKnown {
		t.Fatalf("header mismatch: %+v", back)
	}
	for j := range ins.Profit {
		if back.Profit[j] != ins.Profit[j] {
			t.Fatalf("profit %d mismatch", j)
		}
	}
	for i := range ins.Weight {
		for j := range ins.Weight[i] {
			if back.Weight[i][j] != ins.Weight[i][j] {
				t.Fatalf("weight %d %d mismatch", i, j)
			}
		}
	}
	for i := range ins.Capacity {
		if back.Capacity[i] != ins.Capacity[i] {
			t.Fatalf("capacity %d mismatch", i)
		}
	}
}

func TestReadORLibErrors(t *testing.T) {
	cases := map[string]string{
		"empty":        "",
		"header only":  "4 2 0",
		"bad token":    "4 2 0 abc",
		"truncated":    "4 2 0 10 6 4 7 3 2 1",
		"zero n":       "0 2 0",
		"fractional n": "2.5 2 0",
	}
	for name, in := range cases {
		if _, err := ReadORLib(strings.NewReader(in), name); err == nil {
			t.Errorf("%s: ReadORLib accepted malformed input", name)
		}
	}
}

func TestReadORLibFractionalValues(t *testing.T) {
	in := "2 1 0\n1.5 2.5\n1 1\n1.5\n"
	ins, err := ReadORLib(strings.NewReader(in), "frac")
	if err != nil {
		t.Fatal(err)
	}
	if ins.Profit[0] != 1.5 || ins.Capacity[0] != 1.5 {
		t.Fatalf("fractional values not preserved: %+v", ins)
	}
}
