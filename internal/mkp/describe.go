package mkp

import (
	"fmt"
	"math"
	"strings"
)

// Description summarizes the structural properties that determine an MKP
// instance's hardness: size, capacity tightness, and the profit–weight
// correlation (the knob the benchmark families differ on).
type Description struct {
	Name          string
	N, M          int
	TightnessMin  float64
	TightnessMean float64
	TightnessMax  float64
	// Correlation is the Pearson correlation between each item's profit and
	// its average weight: ~0 for uncorrelated instances, near 1 for the
	// strongly correlated families that defeat size reduction.
	Correlation float64
	// ProfitMean and WeightMean characterize the value scale.
	ProfitMean float64
	WeightMean float64
}

// Describe computes the instance summary.
func Describe(ins *Instance) Description {
	d := Description{
		Name:         ins.Name,
		N:            ins.N,
		M:            ins.M,
		TightnessMin: math.Inf(1),
	}
	tight := 0.0
	for i := 0; i < ins.M; i++ {
		t := ins.Tightness(i)
		tight += t
		if t < d.TightnessMin {
			d.TightnessMin = t
		}
		if t > d.TightnessMax {
			d.TightnessMax = t
		}
	}
	d.TightnessMean = tight / float64(ins.M)

	avgW := make([]float64, ins.N)
	for j := 0; j < ins.N; j++ {
		for i := 0; i < ins.M; i++ {
			avgW[j] += ins.Weight[i][j]
		}
		avgW[j] /= float64(ins.M)
		d.ProfitMean += ins.Profit[j]
		d.WeightMean += avgW[j]
	}
	d.ProfitMean /= float64(ins.N)
	d.WeightMean /= float64(ins.N)

	var cov, varP, varW float64
	for j := 0; j < ins.N; j++ {
		dp := ins.Profit[j] - d.ProfitMean
		dw := avgW[j] - d.WeightMean
		cov += dp * dw
		varP += dp * dp
		varW += dw * dw
	}
	if varP > 0 && varW > 0 {
		d.Correlation = cov / math.Sqrt(varP*varW)
	}
	return d
}

// String renders the description as a short multi-line report.
func (d Description) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "instance %s: %d items x %d constraints\n", d.Name, d.N, d.M)
	fmt.Fprintf(&b, "tightness: %.3f mean (%.3f..%.3f)\n", d.TightnessMean, d.TightnessMin, d.TightnessMax)
	fmt.Fprintf(&b, "profit-weight correlation: %.3f\n", d.Correlation)
	fmt.Fprintf(&b, "means: profit %.1f, weight %.1f", d.ProfitMean, d.WeightMean)
	return b.String()
}
