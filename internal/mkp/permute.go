package mkp

import (
	"fmt"

	"repro/internal/bitset"
)

// PermuteItems returns a new instance whose item j is the input's item
// perm[j], together with nothing else changed. The MKP is invariant under
// item relabeling, so certified optima must agree across permutations —
// the differential test suite uses this to cross-check the solvers.
func PermuteItems(ins *Instance, perm []int) (*Instance, error) {
	if len(perm) != ins.N {
		return nil, fmt.Errorf("mkp: permutation has %d entries, instance has %d items", len(perm), ins.N)
	}
	seen := make([]bool, ins.N)
	for _, j := range perm {
		if j < 0 || j >= ins.N || seen[j] {
			return nil, fmt.Errorf("mkp: invalid permutation (entry %d)", j)
		}
		seen[j] = true
	}
	out := &Instance{
		Name:      ins.Name + "_perm",
		N:         ins.N,
		M:         ins.M,
		Profit:    make([]float64, ins.N),
		Weight:    make([][]float64, ins.M),
		Capacity:  append([]float64(nil), ins.Capacity...),
		BestKnown: ins.BestKnown,
	}
	for j, src := range perm {
		out.Profit[j] = ins.Profit[src]
	}
	for i := 0; i < ins.M; i++ {
		out.Weight[i] = make([]float64, ins.N)
		for j, src := range perm {
			out.Weight[i][j] = ins.Weight[i][src]
		}
	}
	return out, nil
}

// PermuteSolution maps a solution of a PermuteItems instance back to the
// original index space: bit j of the permuted solution corresponds to item
// perm[j] of the original.
func PermuteSolution(sol Solution, perm []int) (Solution, error) {
	if sol.X == nil || sol.X.Len() != len(perm) {
		return Solution{}, fmt.Errorf("mkp: solution/permutation length mismatch")
	}
	x := bitset.New(len(perm))
	var err error
	sol.X.ForEach(func(j int) bool {
		if perm[j] < 0 || perm[j] >= len(perm) {
			err = fmt.Errorf("mkp: invalid permutation entry %d", perm[j])
			return false
		}
		x.Set(perm[j])
		return true
	})
	if err != nil {
		return Solution{}, err
	}
	return Solution{X: x, Value: sol.Value}, nil
}
