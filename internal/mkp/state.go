package mkp

import (
	"fmt"
	"math"

	"repro/internal/bitset"
)

// Solution is an immutable snapshot of a 0-1 assignment and its objective
// value. Snapshots are what solvers exchange and store in best pools; the
// mutable working representation is State.
type Solution struct {
	X     *bitset.Set
	Value float64
}

// Clone returns an independent copy of the solution.
func (s Solution) Clone() Solution {
	return Solution{X: s.X.Clone(), Value: s.Value}
}

// State is the mutable evaluator the tabu search mutates in place. It keeps
// the objective value and per-constraint slack (b_i − Σ_j a_ij x_j)
// incrementally, so Add/Drop cost O(m) and feasibility queries cost O(1)
// amortized via the negative-slack counter.
//
// Add/Drop/Fits walk the instance's contiguous column-major WeightCol slice
// (one cache run per item) rather than striding across the M row slices of
// Weight; the instance is finalized by NewState. NaiveState is the retained
// row-major reference implementation the differential tests compare against.
//
// A State may hold an infeasible assignment (negative slacks); strategic
// oscillation depends on that (§3.2). Feasible() distinguishes the two.
type State struct {
	Ins   *Instance
	X     *bitset.Set
	Value float64
	Slack []float64 // slack[i] = b_i − Σ_j a_ij x_j; negative when violated

	// slackBuf backs Slack, padded to Ins.PadM entries. The pads hold +Inf so
	// the blocked Fits scan can compare whole fitsBlock-wide groups without a
	// remainder loop: a zero pad weight never exceeds infinite pad slack.
	// Add/Drop write only the first M entries (through Slack), so the pads
	// stay +Inf for the state's lifetime.
	slackBuf []float64

	// Saturation probe state, rebuilt lazily by the first Fits after any
	// slack mutation: satIdx is the most saturated (minimum-slack) constraint
	// as of the last refresh and satRow aliases Ins.Weight[satIdx] — a
	// row-major slice, dense in j. Probing the tightest constraint first
	// rejects the overwhelming majority of non-fitting items in one compare
	// (an item-centric heaviest-weight probe manages only ~15% on tight
	// states, because the binding constraint is a property of the state, not
	// of the item). The probe always compares against the live Slack value,
	// so a stale satIdx is a performance question, never a correctness one.
	satRow   []float64
	satIdx   int32
	satDirty bool

	negative int // number of constraints with Slack < 0
}

// NewState returns an empty (all-zero, feasible) state for ins, finalizing
// the instance's column-major layout if it has not been built yet.
func NewState(ins *Instance) *State {
	ins.Finalize()
	buf := make([]float64, ins.PadM)
	copy(buf, ins.Capacity)
	for i := ins.M; i < ins.PadM; i++ {
		buf[i] = math.Inf(1)
	}
	s := &State{
		Ins:      ins,
		X:        bitset.New(ins.N),
		Slack:    buf[:ins.M],
		slackBuf: buf,
		satDirty: true,
	}
	return s
}

// Reset empties the assignment and restores full slack.
func (s *State) Reset() {
	s.X.Reset()
	s.Value = 0
	copy(s.Slack, s.Ins.Capacity)
	s.negative = 0
	s.satDirty = true
}

// Load overwrites the state with the given assignment, recomputing value and
// slacks from scratch in O(n·m).
func (s *State) Load(x *bitset.Set) {
	s.Reset()
	for j := x.NextSet(0); j >= 0; j = x.NextSet(j + 1) {
		s.Add(j)
	}
}

// Snapshot returns an immutable copy of the current assignment and value.
func (s *State) Snapshot() Solution {
	return Solution{X: s.X.Clone(), Value: s.Value}
}

// Add packs item j (which must currently be out) updating value and slacks.
func (s *State) Add(j int) {
	if s.X.Get(j) {
		panic(fmt.Sprintf("mkp: Add(%d) but item already packed", j))
	}
	s.X.Set(j)
	s.Value += s.Ins.Profit[j]
	s.satDirty = true
	m := s.Ins.M
	col := s.Ins.WeightCol[j*m : (j+1)*m]
	slack := s.Slack[:m] // reslice so the column walk is provably in bounds
	for i, a := range col {
		before := slack[i]
		after := before - a
		slack[i] = after
		if before >= 0 && after < 0 {
			s.negative++
		}
	}
}

// Drop removes item j (which must currently be in) updating value and slacks.
func (s *State) Drop(j int) {
	if !s.X.Get(j) {
		panic(fmt.Sprintf("mkp: Drop(%d) but item not packed", j))
	}
	s.X.Clear(j)
	s.Value -= s.Ins.Profit[j]
	s.satDirty = true
	m := s.Ins.M
	col := s.Ins.WeightCol[j*m : (j+1)*m]
	slack := s.Slack[:m]
	for i, a := range col {
		before := slack[i]
		after := before + a
		slack[i] = after
		if before < 0 && after >= 0 {
			s.negative--
		}
	}
}

// Fits reports whether item j (currently out) can be added without violating
// any constraint. The fast path is a single compare of the item's weight in
// the most saturated constraint (as of the last probe refresh) against that
// constraint's live slack: on tight states it rejects >90% of candidates
// with one dense sequential load. Everything else — a stale saturation
// order, or a probe that passes — falls through to fitsSlow. The method body
// is kept small enough to inline into the add-phase scan loops, so the
// common reject costs two loads and a compare, no call.
func (s *State) Fits(j int) bool {
	if !s.satDirty && s.satRow[j] > s.Slack[s.satIdx] {
		return false
	}
	return s.fitsSlow(j)
}

// fitsSlow re-aims the saturation probe if slacks moved since the last
// refresh (re-running the probe that Fits skipped on the dirty path), then
// runs the full blocked walk.
func (s *State) fitsSlow(j int) bool {
	if s.satDirty {
		s.refreshSat()
		if s.satRow[j] > s.Slack[s.satIdx] {
			return false
		}
	}
	return s.fitsScan(j)
}

// Freeze re-aims the saturation probe eagerly so that subsequent Fits calls
// are read-only until the next Add/Drop/Load/Reset. Callers that fan
// feasibility queries out across goroutines while the state is otherwise
// frozen (the low-level evaluator's barrier) must call it first: Fits
// otherwise refreshes the probe lazily, a cache write that races with
// concurrent readers.
func (s *State) Freeze() {
	if s.satDirty {
		s.refreshSat()
	}
}

// refreshSat re-aims the dense probe row at the current minimum-slack
// constraint: one O(m) argmin pass, no sort.
func (s *State) refreshSat() {
	sl := s.Slack
	best := int32(0)
	bs := sl[0]
	for i := 1; i < len(sl); i++ {
		if sl[i] < bs {
			best, bs = int32(i), sl[i]
		}
	}
	s.satIdx = best
	s.satRow = s.Ins.Weight[best]
	s.satDirty = false
}

// fitsScan is the full feasibility walk over item j's padded column,
// fitsBlock entries per iteration (word-parallel multi-constraint check; the
// zero pads can never exceed the +Inf slack pads, so there is no remainder
// loop). Only items that survive the saturation probes reach it.
func (s *State) fitsScan(j int) bool {
	pm := s.Ins.PadM
	col := s.Ins.WeightColPad[j*pm : (j+1)*pm]
	slack := s.slackBuf
	if len(slack) < len(col) {
		return true // unreachable: both have length PadM; aids bounds elision
	}
	for i := 0; i+fitsBlock <= len(col); i += fitsBlock {
		if col[i] > slack[i] || col[i+1] > slack[i+1] || col[i+2] > slack[i+2] || col[i+3] > slack[i+3] {
			return false
		}
	}
	return true
}

// AddMax packs item j, which the caller has already proven to fit (Fits(j)
// returned true against the current slacks), and returns the new maximum
// slack. Fusing the commit with the max-slack pass saves the separate O(m)
// MaxSlack walk the add-phase scans would otherwise run after every
// insertion. Because j fits, no slack goes negative and the violation
// counter cannot change, so the transition bookkeeping of Add is skipped.
func (s *State) AddMax(j int) float64 {
	if s.X.Get(j) {
		panic(fmt.Sprintf("mkp: AddMax(%d) but item already packed", j))
	}
	s.X.Set(j)
	s.Value += s.Ins.Profit[j]
	m := s.Ins.M
	col := s.Ins.WeightCol[j*m : (j+1)*m]
	slack := s.Slack[:m]
	nm := math.Inf(-1)
	mn, mi := math.Inf(1), int32(0)
	for i, a := range col {
		v := slack[i] - a
		slack[i] = v
		if v > nm {
			nm = v
		}
		if v < mn {
			mn, mi = v, int32(i)
		}
	}
	// The same walk yields the new minimum-slack constraint, so the
	// saturation probe stays clean: the scan loops that alternate probes and
	// commits never pay a separate refresh pass.
	s.satIdx = mi
	s.satRow = s.Ins.Weight[mi]
	s.satDirty = false
	return nm
}

// MaxSlack returns max_i slack_i. Combined with Instance.MinWeight it gives
// the add-phase quick reject: when MinWeight[j] > MaxSlack(), item j exceeds
// every constraint's remaining room, so Fits(j) is certainly false and the
// O(m) column walk can be skipped after a single compare. The bound is
// conservative in the other direction (passing it does not imply fitting).
func (s *State) MaxSlack() float64 {
	ms := math.Inf(-1)
	for _, sl := range s.Slack {
		if sl > ms {
			ms = sl
		}
	}
	return ms
}

// Feasible reports whether every constraint is satisfied.
func (s *State) Feasible() bool { return s.negative == 0 }

// Violation returns Σ_i max(0, −slack_i): zero iff feasible. Oscillation uses
// it to bound how deep the search wanders outside the feasible domain.
func (s *State) Violation() float64 {
	if s.negative == 0 {
		return 0
	}
	v := 0.0
	for _, sl := range s.Slack {
		if sl < 0 {
			v -= sl
		}
	}
	return v
}

// MostSaturated returns the index of the constraint with minimum slack — the
// paper's drop rule "i* = ArgMin (b_i − Σ_j a_ij x_j)" (§3.1). Ties break to
// the lowest index.
func (s *State) MostSaturated() int {
	best, bestSlack := 0, math.Inf(1)
	for i, sl := range s.Slack {
		if sl < bestSlack {
			best, bestSlack = i, sl
		}
	}
	return best
}

// Recompute rebuilds value and slacks from the assignment in O(n·m) and
// reports the maximum absolute drift that incremental updates had
// accumulated. Tests use it to verify evaluator consistency.
func (s *State) Recompute() float64 {
	value := 0.0
	slack := append([]float64(nil), s.Ins.Capacity...)
	m := s.Ins.M
	for j := s.X.NextSet(0); j >= 0; j = s.X.NextSet(j + 1) {
		value += s.Ins.Profit[j]
		col := s.Ins.WeightCol[j*m : (j+1)*m]
		for i, a := range col {
			slack[i] -= a
		}
	}
	drift := math.Abs(value - s.Value)
	for i := range slack {
		if d := math.Abs(slack[i] - s.Slack[i]); d > drift {
			drift = d
		}
	}
	s.Value = value
	copy(s.Slack, slack)
	s.satDirty = true
	s.negative = 0
	for _, sl := range s.Slack {
		if sl < 0 {
			s.negative++
		}
	}
	return drift
}

// IsFeasibleAssignment reports whether x satisfies every constraint of ins,
// evaluated from scratch (no state needed).
func IsFeasibleAssignment(ins *Instance, x *bitset.Set) bool {
	for i := 0; i < ins.M; i++ {
		load := 0.0
		row := ins.Weight[i]
		for j := x.NextSet(0); j >= 0; j = x.NextSet(j + 1) {
			load += row[j]
		}
		if load > ins.Capacity[i] {
			return false
		}
	}
	return true
}

// ValueOf returns Σ_j c_j x_j evaluated from scratch.
func ValueOf(ins *Instance, x *bitset.Set) float64 {
	v := 0.0
	for j := x.NextSet(0); j >= 0; j = x.NextSet(j + 1) {
		v += ins.Profit[j]
	}
	return v
}
