package mkp

import (
	"fmt"
	"math"

	"repro/internal/bitset"
)

// Solution is an immutable snapshot of a 0-1 assignment and its objective
// value. Snapshots are what solvers exchange and store in best pools; the
// mutable working representation is State.
type Solution struct {
	X     *bitset.Set
	Value float64
}

// Clone returns an independent copy of the solution.
func (s Solution) Clone() Solution {
	return Solution{X: s.X.Clone(), Value: s.Value}
}

// State is the mutable evaluator the tabu search mutates in place. It keeps
// the objective value and per-constraint slack (b_i − Σ_j a_ij x_j)
// incrementally, so Add/Drop cost O(m) and feasibility queries cost O(1)
// amortized via the negative-slack counter.
//
// Add/Drop/Fits walk the instance's contiguous column-major WeightCol slice
// (one cache run per item) rather than striding across the M row slices of
// Weight; the instance is finalized by NewState. NaiveState is the retained
// row-major reference implementation the differential tests compare against.
//
// A State may hold an infeasible assignment (negative slacks); strategic
// oscillation depends on that (§3.2). Feasible() distinguishes the two.
type State struct {
	Ins   *Instance
	X     *bitset.Set
	Value float64
	Slack []float64 // slack[i] = b_i − Σ_j a_ij x_j; negative when violated

	negative int // number of constraints with Slack < 0
}

// NewState returns an empty (all-zero, feasible) state for ins, finalizing
// the instance's column-major layout if it has not been built yet.
func NewState(ins *Instance) *State {
	ins.Finalize()
	s := &State{
		Ins:   ins,
		X:     bitset.New(ins.N),
		Slack: append([]float64(nil), ins.Capacity...),
	}
	return s
}

// Reset empties the assignment and restores full slack.
func (s *State) Reset() {
	s.X.Reset()
	s.Value = 0
	copy(s.Slack, s.Ins.Capacity)
	s.negative = 0
}

// Load overwrites the state with the given assignment, recomputing value and
// slacks from scratch in O(n·m).
func (s *State) Load(x *bitset.Set) {
	s.Reset()
	for j := x.NextSet(0); j >= 0; j = x.NextSet(j + 1) {
		s.Add(j)
	}
}

// Snapshot returns an immutable copy of the current assignment and value.
func (s *State) Snapshot() Solution {
	return Solution{X: s.X.Clone(), Value: s.Value}
}

// Add packs item j (which must currently be out) updating value and slacks.
func (s *State) Add(j int) {
	if s.X.Get(j) {
		panic(fmt.Sprintf("mkp: Add(%d) but item already packed", j))
	}
	s.X.Set(j)
	s.Value += s.Ins.Profit[j]
	m := s.Ins.M
	col := s.Ins.WeightCol[j*m : (j+1)*m]
	slack := s.Slack[:m] // reslice so the column walk is provably in bounds
	for i, a := range col {
		before := slack[i]
		after := before - a
		slack[i] = after
		if before >= 0 && after < 0 {
			s.negative++
		}
	}
}

// Drop removes item j (which must currently be in) updating value and slacks.
func (s *State) Drop(j int) {
	if !s.X.Get(j) {
		panic(fmt.Sprintf("mkp: Drop(%d) but item not packed", j))
	}
	s.X.Clear(j)
	s.Value -= s.Ins.Profit[j]
	m := s.Ins.M
	col := s.Ins.WeightCol[j*m : (j+1)*m]
	slack := s.Slack[:m]
	for i, a := range col {
		before := slack[i]
		after := before + a
		slack[i] = after
		if before < 0 && after >= 0 {
			s.negative--
		}
	}
}

// Fits reports whether item j (currently out) can be added without violating
// any constraint. It probes the item's heaviest constraint first — the one
// most likely to reject it — then walks the contiguous column.
func (s *State) Fits(j int) bool {
	m := s.Ins.M
	col := s.Ins.WeightCol[j*m : (j+1)*m]
	slack := s.Slack[:m]
	if h := s.Ins.HeaviestIn[j]; col[h] > slack[h] {
		return false
	}
	for i, a := range col {
		if a > slack[i] {
			return false
		}
	}
	return true
}

// MaxSlack returns max_i slack_i. Combined with Instance.MinWeight it gives
// the add-phase quick reject: when MinWeight[j] > MaxSlack(), item j exceeds
// every constraint's remaining room, so Fits(j) is certainly false and the
// O(m) column walk can be skipped after a single compare. The bound is
// conservative in the other direction (passing it does not imply fitting).
func (s *State) MaxSlack() float64 {
	ms := math.Inf(-1)
	for _, sl := range s.Slack {
		if sl > ms {
			ms = sl
		}
	}
	return ms
}

// Feasible reports whether every constraint is satisfied.
func (s *State) Feasible() bool { return s.negative == 0 }

// Violation returns Σ_i max(0, −slack_i): zero iff feasible. Oscillation uses
// it to bound how deep the search wanders outside the feasible domain.
func (s *State) Violation() float64 {
	if s.negative == 0 {
		return 0
	}
	v := 0.0
	for _, sl := range s.Slack {
		if sl < 0 {
			v -= sl
		}
	}
	return v
}

// MostSaturated returns the index of the constraint with minimum slack — the
// paper's drop rule "i* = ArgMin (b_i − Σ_j a_ij x_j)" (§3.1). Ties break to
// the lowest index.
func (s *State) MostSaturated() int {
	best, bestSlack := 0, math.Inf(1)
	for i, sl := range s.Slack {
		if sl < bestSlack {
			best, bestSlack = i, sl
		}
	}
	return best
}

// Recompute rebuilds value and slacks from the assignment in O(n·m) and
// reports the maximum absolute drift that incremental updates had
// accumulated. Tests use it to verify evaluator consistency.
func (s *State) Recompute() float64 {
	value := 0.0
	slack := append([]float64(nil), s.Ins.Capacity...)
	m := s.Ins.M
	for j := s.X.NextSet(0); j >= 0; j = s.X.NextSet(j + 1) {
		value += s.Ins.Profit[j]
		col := s.Ins.WeightCol[j*m : (j+1)*m]
		for i, a := range col {
			slack[i] -= a
		}
	}
	drift := math.Abs(value - s.Value)
	for i := range slack {
		if d := math.Abs(slack[i] - s.Slack[i]); d > drift {
			drift = d
		}
	}
	s.Value = value
	copy(s.Slack, slack)
	s.negative = 0
	for _, sl := range s.Slack {
		if sl < 0 {
			s.negative++
		}
	}
	return drift
}

// IsFeasibleAssignment reports whether x satisfies every constraint of ins,
// evaluated from scratch (no state needed).
func IsFeasibleAssignment(ins *Instance, x *bitset.Set) bool {
	for i := 0; i < ins.M; i++ {
		load := 0.0
		row := ins.Weight[i]
		for j := x.NextSet(0); j >= 0; j = x.NextSet(j + 1) {
			load += row[j]
		}
		if load > ins.Capacity[i] {
			return false
		}
	}
	return true
}

// ValueOf returns Σ_j c_j x_j evaluated from scratch.
func ValueOf(ins *Instance, x *bitset.Set) float64 {
	v := 0.0
	for j := x.NextSet(0); j >= 0; j = x.NextSet(j + 1) {
		v += ins.Profit[j]
	}
	return v
}
