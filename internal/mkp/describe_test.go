package mkp

import (
	"math"
	"strings"
	"testing"
)

func TestDescribeTiny(t *testing.T) {
	d := Describe(tiny())
	if d.N != 4 || d.M != 2 || d.Name != "tiny" {
		t.Fatalf("header wrong: %+v", d)
	}
	// Constraint tightness: 6/10 = 0.6 and 5/9 ≈ 0.556.
	if math.Abs(d.TightnessMean-(0.6+5.0/9.0)/2) > 1e-9 {
		t.Fatalf("TightnessMean = %v", d.TightnessMean)
	}
	if d.TightnessMin > d.TightnessMean || d.TightnessMean > d.TightnessMax {
		t.Fatalf("tightness ordering broken: %+v", d)
	}
	if d.Correlation < -1 || d.Correlation > 1 {
		t.Fatalf("Correlation = %v", d.Correlation)
	}
	s := d.String()
	for _, want := range []string{"tiny", "4 items", "correlation"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String missing %q:\n%s", want, s)
		}
	}
}

func TestDescribePerfectCorrelation(t *testing.T) {
	// Profit exactly equals average weight: correlation 1.
	ins := &Instance{
		Name: "corr", N: 4, M: 1,
		Profit:   []float64{10, 20, 30, 40},
		Weight:   [][]float64{{10, 20, 30, 40}},
		Capacity: []float64{50},
	}
	d := Describe(ins)
	if math.Abs(d.Correlation-1) > 1e-9 {
		t.Fatalf("Correlation = %v, want 1", d.Correlation)
	}
}

func TestDescribeConstantProfitNoNaN(t *testing.T) {
	ins := &Instance{
		Name: "const", N: 3, M: 1,
		Profit:   []float64{5, 5, 5},
		Weight:   [][]float64{{1, 2, 3}},
		Capacity: []float64{4},
	}
	d := Describe(ins)
	if d.Correlation != 0 || math.IsNaN(d.Correlation) {
		t.Fatalf("degenerate correlation = %v, want 0", d.Correlation)
	}
}
