package mkp

import (
	"sort"

	"repro/internal/bitset"
	"repro/internal/rng"
)

// RankByUtility returns item indices sorted by decreasing pseudo-utility
// c_j / Σ_i (a_ij / b_i). Ties break to the lower index for determinism.
// The ranking is computed once per instance (in Finalize) and cached; this
// returns an independent copy callers may reorder freely.
func RankByUtility(ins *Instance) []int {
	ins.Finalize()
	return append([]int(nil), ins.utilRank...)
}

// rankByUtility computes the utility ordering from scratch. Finalize calls it
// exactly once per instance; everyone else goes through the cache.
func rankByUtility(ins *Instance) []int {
	util := make([]float64, ins.N)
	for j := 0; j < ins.N; j++ {
		util[j] = ins.PseudoUtility(j)
	}
	order := make([]int, ins.N)
	for j := range order {
		order[j] = j
	}
	sort.SliceStable(order, func(a, b int) bool { return util[order[a]] > util[order[b]] })
	return order
}

// Greedy builds a feasible solution by packing items in decreasing
// pseudo-utility order, skipping anything that no longer fits. This is the
// deterministic baseline constructor.
func Greedy(ins *Instance) Solution {
	st := NewState(ins)
	maxSlack := st.MaxSlack()
	for k, j := range ins.utilRank {
		if ins.rankSufMin[k] > maxSlack {
			break // no remaining candidate fits any constraint
		}
		if ins.MinWeight[j] > maxSlack {
			continue // cannot fit in any constraint; skip the O(m) probe
		}
		if st.Fits(j) {
			maxSlack = st.AddMax(j)
		}
	}
	return st.Snapshot()
}

// RandomizedGreedy builds a feasible solution by repeatedly picking uniformly
// among the rcl best-utility items that still fit (a GRASP-style restricted
// candidate list). rcl <= 1 degenerates to Greedy with random tie-breaking.
// The master uses it to inject fresh random starting solutions (ISP rule 2).
func RandomizedGreedy(ins *Instance, r *rng.Rand, rcl int) Solution {
	if rcl < 1 {
		rcl = 1
	}
	st := NewState(ins)
	order := RankByUtility(ins)
	remaining := append([]int(nil), order...)
	for len(remaining) > 0 {
		// Collect up to rcl fitting candidates in utility order.
		cands := make([]int, 0, rcl)
		next := remaining[:0]
		maxSlack := st.MaxSlack()
		for _, j := range remaining {
			if ins.MinWeight[j] > maxSlack {
				continue // certainly does not fit now or later: slack shrinks
			}
			if st.Fits(j) {
				if len(cands) < rcl {
					cands = append(cands, j)
				}
				next = append(next, j)
			}
		}
		remaining = next
		if len(cands) == 0 {
			break
		}
		pick := cands[r.Intn(len(cands))]
		st.Add(pick)
		// Remove the packed item from the remaining pool.
		for k, j := range remaining {
			if j == pick {
				remaining = append(remaining[:k], remaining[k+1:]...)
				break
			}
		}
	}
	return st.Snapshot()
}

// RandomFeasible draws a uniformly random 0-1 vector and repairs it into the
// feasible domain, then greedily tops it up. The paper's ISP substitutes such
// "new randomly generated solutions" for stagnant starts (§4.2).
func RandomFeasible(ins *Instance, r *rng.Rand) Solution {
	x := bitset.New(ins.N)
	for j := 0; j < ins.N; j++ {
		if r.Bool(0.5) {
			x.Set(j)
		}
	}
	st := NewState(ins)
	st.Load(x)
	Repair(st)
	FillGreedy(st)
	return st.Snapshot()
}

// Repair projects an infeasible state onto the feasible domain by dropping
// packed items in decreasing burden ratio Σ_i a_ij/c_j — "excluding from the
// knapsack the less interesting objects" (§3.2) — until all constraints hold.
// A feasible state is returned unchanged.
func Repair(st *State) {
	if st.Feasible() {
		return
	}
	packed := st.X.Indices(nil)
	sort.SliceStable(packed, func(a, b int) bool {
		return st.Ins.BurdenRatio(packed[a]) > st.Ins.BurdenRatio(packed[b])
	})
	for _, j := range packed {
		if st.Feasible() {
			return
		}
		st.Drop(j)
	}
}

// FillGreedy packs any still-fitting items in decreasing pseudo-utility
// order. It requires a feasible state and keeps it feasible. The MinWeight
// quick reject skips the O(m) Fits probe for items that exceed even the
// loosest constraint's remaining room, and the suffix-min bound over the
// utility order ends the scan outright once no remaining candidate can fit
// (max slack only shrinks as items are packed, so the exit is
// behavior-preserving).
func FillGreedy(st *State) {
	ins := st.Ins
	maxSlack := st.MaxSlack()
	for k, j := range ins.utilRank {
		if ins.rankSufMin[k] > maxSlack {
			break
		}
		if ins.MinWeight[j] > maxSlack || st.X.Get(j) {
			continue
		}
		if st.Fits(j) {
			maxSlack = st.AddMax(j)
		}
	}
}
