package mkp

import (
	"bufio"
	"fmt"
	"io"
)

// ReadChuBeasley parses a Chu–Beasley benchmark file (the OR-Library
// mknapcb1..9 series, conventionally distributed with a .dat extension):
//
//	K
//	n m opt
//	c_1 ... c_n
//	a_11 ... a_1n
//	...
//	a_m1 ... a_mn
//	b_1 ... b_m
//	(next problem)
//
// The token layout is the OR-Library multi-problem layout — whitespace
// separates tokens freely — but the series' conventions differ from mknap1:
// every file holds 30 instances of one (m, n) shape in three tightness
// groups, and the header's opt field is 0 for the larger shapes where the
// optimum is unproven. opt is stored as BestKnown (0 = unknown), and each
// instance is named name cbM.N-K (K counting from 0, matching the published
// "5.100-00" convention).
func ReadChuBeasley(r io.Reader, name string) ([]*Instance, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
	sc.Split(bufio.ScanWords)
	k, err := nextIntToken(sc)
	if err != nil {
		return nil, fmt.Errorf("mkp: reading problem count: %w", err)
	}
	if k <= 0 || k > 1_000_000 {
		return nil, fmt.Errorf("mkp: implausible problem count %d", k)
	}
	out := make([]*Instance, 0, k)
	for p := 0; p < k; p++ {
		ins, err := readOne(sc, name)
		if err != nil {
			return nil, fmt.Errorf("mkp: problem %d of %d: %w", p+1, k, err)
		}
		ins.Name = fmt.Sprintf("%s cb%d.%d-%02d", name, ins.M, ins.N, p)
		out = append(out, ins)
	}
	return out, nil
}
