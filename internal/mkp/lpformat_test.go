package mkp

import (
	"strings"
	"testing"
)

func TestWriteLPFormat(t *testing.T) {
	var sb strings.Builder
	if err := WriteLPFormat(&sb, tiny()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"Maximize",
		"obj: 10 x0 + 6 x1 + 4 x2 + 7 x3",
		"Subject To",
		"c0: 3 x0 + 2 x1 + 1 x2 + 4 x3 <= 6",
		"c1: 2 x0 + 3 x1 + 3 x2 + 1 x3 <= 5",
		"Binaries",
		" x0 x1 x2 x3",
		"End",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("LP output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteLPFormatSkipsZeroCoefficients(t *testing.T) {
	ins := tiny()
	ins.Weight[0][1] = 0
	var sb strings.Builder
	if err := WriteLPFormat(&sb, ins); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "0 x1 +") || strings.Contains(sb.String(), "+ 0 x1") {
		t.Fatalf("zero coefficient emitted:\n%s", sb.String())
	}
}

func TestWriteLPFormatRejectsInvalid(t *testing.T) {
	ins := tiny()
	ins.Profit[0] = -1
	var sb strings.Builder
	if err := WriteLPFormat(&sb, ins); err == nil {
		t.Fatal("invalid instance accepted")
	}
}

func TestWriteLPFormatManyItemsWraps(t *testing.T) {
	ins := &Instance{Name: "wide", N: 40, M: 1}
	ins.Profit = make([]float64, 40)
	ins.Weight = [][]float64{make([]float64, 40)}
	for j := 0; j < 40; j++ {
		ins.Profit[j] = 1
		ins.Weight[0][j] = 1
	}
	ins.Capacity = []float64{10}
	var sb strings.Builder
	if err := WriteLPFormat(&sb, ins); err != nil {
		t.Fatal(err)
	}
	// The Binaries section wraps every 16 variables.
	lines := strings.Split(sb.String(), "\n")
	inBin := false
	for _, line := range lines {
		if line == "Binaries" {
			inBin = true
			continue
		}
		if inBin && line != "End" && len(strings.Fields(line)) > 16 {
			t.Fatalf("Binaries line too wide: %q", line)
		}
		if line == "End" {
			break
		}
	}
}
