package serve

import (
	"fmt"
	"net"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"
)

// tinySendBufListener pins each accepted connection's kernel send buffer to a
// few KB. Linux otherwise auto-tunes SO_SNDBUF into the megabytes, which
// means a stream to a non-reading client "succeeds" for tens of thousands of
// events before the first write ever blocks — far too slow for a test that
// wants to watch a blocked write hit its deadline.
type tinySendBufListener struct{ net.Listener }

func (l tinySendBufListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if tc, ok := c.(*net.TCPConn); err == nil && ok {
		_ = tc.SetWriteBuffer(4096)
	}
	return c, err
}

// TestEventsStreamSlowClientReleasesHandler: a subscriber that opens the
// /events stream and then never reads a byte must not pin its handler. The
// send buffer fills, the per-write deadline fires, the handler exits and the
// server closes the broken connection — all while the client socket is still
// open. Without StreamWriteTimeout each silent peer parks one server
// goroutine in the kernel send buffer for as long as it keeps the socket up.
func TestEventsStreamSlowClientReleasesHandler(t *testing.T) {
	if testing.Short() {
		t.Skip("fills TCP send buffers in real time")
	}
	s, err := New(Config{Slots: 1, StreamWriteTimeout: 300 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewUnstartedServer(s.Handler())
	ts.Listener = tinySendBufListener{ts.Listener}
	ts.Start()
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	// A job that publishes round events continuously for the whole test; the
	// server's Close cancels it through the job stop channel.
	// A maximum-length client-chosen job ID rides along in every event, so the
	// full backlog is ~70KB of NDJSON — several times the pinned socket
	// capacity. That makes the handler block inside the backlog loop, before
	// the live loop where a fast solver could cut a lagging subscriber loose
	// and let the handler exit cleanly without ever testing the deadline.
	spec := Spec{
		ID:     "slow-client-" + strings.Repeat("x", 116),
		Gen:    &GenSpec{N: 60, M: 4, Seed: 5},
		P:      1,
		Seed:   5,
		Rounds: 1_000_000,
		Moves:  50,
	}
	st, _ := submit(t, ts, spec)
	waitState(t, ts, st.ID, StateRunning)

	// Wait for a full hub backlog before any client connects: the saturating
	// burst must all be there when the handler starts writing, independent of
	// how fast the contended solver emits live events during the poll window.
	backlogDeadline := time.Now().Add(60 * time.Second)
	for getStatus(t, ts, st.ID).Round < hubBacklog {
		if time.Now().After(backlogDeadline) {
			t.Fatalf("job never accumulated %d backlog rounds", hubBacklog)
		}
		time.Sleep(50 * time.Millisecond)
	}

	baseline := runtime.NumGoroutine()

	// Several silent peers, so stuck handlers stand clear of goroutine noise.
	const silent = 4
	for i := 0; i < silent; i++ {
		conn, err := net.Dial("tcp", ts.Listener.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		// Shrink the receive window too: the stream saturates in a handful of
		// events instead of tens of kilobytes.
		if tc, ok := conn.(*net.TCPConn); ok {
			_ = tc.SetReadBuffer(4096)
		}
		fmt.Fprintf(conn, "GET /jobs/%s/events HTTP/1.1\r\nHost: mkp\r\n\r\n", st.ID)
		// Read nothing, close nothing.
	}

	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		// Every handler goroutine must be gone while the client sockets stay
		// open. Stuck handlers hold the count at baseline+silent.
		if runtime.NumGoroutine() <= baseline+1 {
			return
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Fatalf("goroutines stuck at %d (baseline %d): events handlers never timed out on the silent clients",
		runtime.NumGoroutine(), baseline)
}
