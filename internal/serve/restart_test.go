package serve

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/mkp"
)

func startHTTP(t *testing.T, s *Server) string {
	t.Helper()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts.URL
}

func solveDirect(t *testing.T, ins *mkp.Instance, spec Spec) float64 {
	t.Helper()
	algo := core.CTS2
	if spec.Algorithm != "" {
		var err error
		if algo, err = core.ParseAlgorithm(spec.Algorithm); err != nil {
			t.Fatal(err)
		}
	}
	res, err := core.Solve(ins, algo, core.Options{
		P: spec.P, Seed: spec.Seed, Rounds: spec.Rounds, RoundMoves: spec.Moves,
		Alpha: spec.Alpha, Target: spec.Target,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res.Best.Value
}

// TestRestartResumesUnfinishedJobs is the durability contract: a server that
// goes down over a data directory comes back with every unfinished job
// re-admitted and resumed from its newest checkpoint, and every finished job
// still fully servable.
func TestRestartResumesUnfinishedJobs(t *testing.T) {
	dir := t.TempDir()

	s1, err := New(Config{Dir: dir, Slots: 4})
	if err != nil {
		t.Fatal(err)
	}
	// One job that finishes before the restart, two that cannot.
	quick, err := s1.Submit(genSpec(5, 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	long1 := genSpec(6, 2, 400)
	long1.Moves = 1500
	slow1, err := s1.Submit(long1)
	if err != nil {
		t.Fatal(err)
	}
	long2 := genSpec(7, 2, 400)
	long2.Moves = 1500
	slow2, err := s1.Submit(long2)
	if err != nil {
		t.Fatal(err)
	}
	<-quick.done
	// Wait until both slow jobs have checkpointed at least a few rounds.
	waitRound := func(j *Job, n int) {
		deadline := time.Now().Add(30 * time.Second)
		for time.Now().Before(deadline) {
			j.mu.Lock()
			r := j.round
			j.mu.Unlock()
			if r >= n {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatalf("job %s never reached round %d", j.spec.ID, n)
	}
	waitRound(slow1, 3)
	waitRound(slow2, 3)
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	st := slow1.status()
	if st.State != StateInterrupted {
		t.Fatalf("slow job state after shutdown: %s", st.State)
	}

	// Second incarnation over the same directory.
	s2, err := New(Config{Dir: dir, Slots: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()

	qj, ok := s2.Job(quick.spec.ID)
	if !ok {
		t.Fatal("finished job not recovered")
	}
	if qst := qj.status(); qst.State != StateDone || qst.Value != quick.status().Value {
		t.Fatalf("finished job recovered as %+v", qst)
	}

	for _, id := range []string{slow1.spec.ID, slow2.spec.ID} {
		j, ok := s2.Job(id)
		if !ok {
			t.Fatalf("unfinished job %s not recovered", id)
		}
		jst := j.status()
		if jst.ResumedFrom < 3 {
			t.Fatalf("job %s resumed from round %d, want >= 3", id, jst.ResumedFrom)
		}
		// Cut the remaining work down so the test finishes: cancel after the
		// resume has demonstrably progressed past the checkpoint.
		deadline := time.Now().Add(30 * time.Second)
		for {
			cur := j.status()
			if cur.State == StateRunning && cur.Round > jst.ResumedFrom {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %s never progressed past its checkpoint (state %s round %d)", id, cur.State, cur.Round)
			}
			time.Sleep(5 * time.Millisecond)
		}
		j.cancel()
		<-j.done
		if fin := j.status(); fin.State != StateDone || fin.Value <= 0 {
			t.Fatalf("resumed job %s ended %+v", id, fin)
		}
	}
}

// TestRecoveredSolutionServable: a finished job's solution survives the
// restart and is served from disk.
func TestRecoveredSolutionServable(t *testing.T) {
	dir := t.TempDir()
	s1, err := New(Config{Dir: dir, Slots: 2})
	if err != nil {
		t.Fatal(err)
	}
	spec := genSpec(11, 2, 3)
	j, err := s1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	<-j.done
	want := j.status().Value
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := New(Config{Dir: dir, Slots: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	srv := startHTTP(t, s2)
	resp, err := http.Get(srv + "/jobs/" + j.spec.ID + "/solution")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solution after restart: %d", resp.StatusCode)
	}
	_, sol, err := mkp.ReadSolution(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	ins, _ := spec.buildInstance()
	if !mkp.IsFeasibleAssignment(ins, sol.X) || mkp.ValueOf(ins, sol.X) != want {
		t.Fatalf("recovered solution does not verify (value %v, want %v)", mkp.ValueOf(ins, sol.X), want)
	}
}
