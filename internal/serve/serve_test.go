package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/mkp"
)

func genSpec(seed uint64, p, rounds int) Spec {
	return Spec{
		Gen:    &GenSpec{N: 60, M: 4, Seed: seed},
		P:      p,
		Seed:   seed,
		Rounds: rounds,
		Moves:  200,
	}
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func submit(t *testing.T, ts *httptest.Server, spec Spec) (Status, *http.Response) {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Status
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
	}
	return st, resp
}

func getStatus(t *testing.T, ts *httptest.Server, id string) Status {
	t.Helper()
	resp, err := http.Get(ts.URL + "/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func waitState(t *testing.T, ts *httptest.Server, id, want string) Status {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st := getStatus(t, ts, id)
		if st.State == want {
			return st
		}
		if st.State == StateFailed && want != StateFailed {
			t.Fatalf("job %s failed: %s", id, st.Error)
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
	return Status{}
}

func TestSubmitSolveAndFetchSolution(t *testing.T) {
	_, ts := newTestServer(t, Config{Slots: 4})
	st, resp := submit(t, ts, genSpec(7, 2, 6))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	if st.ID == "" || st.State != StateQueued {
		t.Fatalf("unexpected submit status %+v", st)
	}
	final := waitState(t, ts, st.ID, StateDone)
	if final.Value <= 0 || final.Round != 6 {
		t.Fatalf("final status %+v", final)
	}

	// The served solution must verify against the regenerated instance.
	sresp, err := http.Get(ts.URL + "/jobs/" + st.ID + "/solution")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if sresp.StatusCode != http.StatusOK {
		t.Fatalf("solution: %d", sresp.StatusCode)
	}
	name, sol, err := mkp.ReadSolution(sresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	spec := genSpec(7, 2, 6)
	ins, err := spec.buildInstance()
	if err != nil {
		t.Fatal(err)
	}
	if name != ins.Name {
		t.Fatalf("solution names %q, instance is %q", name, ins.Name)
	}
	if !mkp.IsFeasibleAssignment(ins, sol.X) {
		t.Fatal("served solution infeasible")
	}
	if got := mkp.ValueOf(ins, sol.X); got != final.Value {
		t.Fatalf("solution value %v, status said %v", got, final.Value)
	}
}

func TestConcurrentJobsAllCompleteWithDistinctMetrics(t *testing.T) {
	s, ts := newTestServer(t, Config{Slots: 8})
	const jobs = 8
	ids := make([]string, jobs)
	for i := 0; i < jobs; i++ {
		st, resp := submit(t, ts, genSpec(uint64(100+i), 2, 4))
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: %d", i, resp.StatusCode)
		}
		ids[i] = st.ID
	}
	for _, id := range ids {
		waitState(t, ts, id, StateDone)
	}
	// Merged exposition: every job's series appear under its own label, and
	// the per-run masters never collided on a shared registry.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var expo bytes.Buffer
	if _, err := expo.ReadFrom(mresp.Body); err != nil {
		t.Fatal(err)
	}
	text := expo.String()
	for _, id := range ids {
		if !strings.Contains(text, fmt.Sprintf(`core_rounds_total{job=%q} 4`, id)) {
			t.Fatalf("exposition lacks job %s rounds:\n%s", id, text)
		}
	}
	if !strings.Contains(text, fmt.Sprintf("serve_jobs_done_total %d", jobs)) {
		t.Fatalf("server counters missing:\n%s", text)
	}
	if s.Capacity() != 8 {
		t.Fatalf("capacity %d", s.Capacity())
	}
}

func TestAdmissionControl(t *testing.T) {
	_, ts := newTestServer(t, Config{Slots: 2, MaxQueue: 2})

	// Capacity violation: a job wider than the pool can never run.
	_, resp := submit(t, ts, genSpec(1, 3, 2))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("over-wide job got %d", resp.StatusCode)
	}
	// Malformed instance.
	bad := Spec{Instance: &InstanceSpec{Profit: []float64{1, -2}, Weight: [][]float64{{1, 1}}, Capacity: []float64{1}}}
	_, resp = submit(t, ts, bad)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad instance got %d", resp.StatusCode)
	}
	// Queue full: two long jobs fill MaxQueue, the third bounces with 503.
	long := genSpec(2, 2, 200)
	long.Moves = 2000
	if _, resp = submit(t, ts, long); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first long job got %d", resp.StatusCode)
	}
	long.Seed = 3
	if _, resp = submit(t, ts, long); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second long job got %d", resp.StatusCode)
	}
	long.Seed = 4
	if _, resp = submit(t, ts, long); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-quota job got %d, want 503", resp.StatusCode)
	}
}

func TestFIFONoOvertaking(t *testing.T) {
	_, ts := newTestServer(t, Config{Slots: 2, MaxQueue: 16})
	// A occupies 1 of 2 slots for a while; B needs 2 and must wait for A;
	// C needs 1 — it would fit beside A, but FIFO keeps it behind B.
	a := genSpec(1, 1, 1_000_000)
	a.Moves = 2000
	stA, _ := submit(t, ts, a)
	waitState(t, ts, stA.ID, StateRunning)
	stB, _ := submit(t, ts, genSpec(2, 2, 2))
	stC, _ := submit(t, ts, genSpec(3, 1, 2))

	time.Sleep(300 * time.Millisecond)
	if st := getStatus(t, ts, stA.ID); st.State != StateRunning {
		t.Fatalf("A should still be running, is %s", st.State)
	}
	if st := getStatus(t, ts, stC.ID); st.State != StateQueued {
		t.Fatalf("C overtook B: state %s while A still holds the pool", st.State)
	}
	// Cancel A; B then C run to completion in order.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+stA.ID, nil)
	if resp, err := http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}
	bDone := waitState(t, ts, stB.ID, StateDone)
	cDone := waitState(t, ts, stC.ID, StateDone)
	if cDone.StartedAt.Before(bDone.StartedAt) {
		t.Fatal("C started before B")
	}
	// A was canceled mid-run: done with partial rounds and the flag set.
	aDone := waitState(t, ts, stA.ID, StateDone)
	if !aDone.Canceled || aDone.Round >= 1_000_000 {
		t.Fatalf("canceled job finished oddly: %+v", aDone)
	}
}

func TestEventsStreamDeliversProgressAndTerminal(t *testing.T) {
	_, ts := newTestServer(t, Config{Slots: 2})
	st, _ := submit(t, ts, genSpec(9, 2, 5))
	resp, err := http.Get(ts.URL + "/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	var rounds int
	var sawDone bool
	var lastSeq int
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		if e.Seq <= lastSeq {
			t.Fatalf("events out of order: %d after %d", e.Seq, lastSeq)
		}
		lastSeq = e.Seq
		switch e.Kind {
		case "round":
			rounds++
		case "done":
			sawDone = true
			if e.Messages == 0 {
				t.Fatal("terminal event carries no traffic counters")
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if rounds < 5 || !sawDone {
		t.Fatalf("stream saw %d rounds, done=%v", rounds, sawDone)
	}
}

func TestJobResultMatchesDirectSolve(t *testing.T) {
	// A served job is the same deterministic run Solve would do: identical
	// spec, identical value.
	_, ts := newTestServer(t, Config{Slots: 4})
	spec := genSpec(42, 2, 5)
	st, _ := submit(t, ts, spec)
	final := waitState(t, ts, st.ID, StateDone)

	ins, err := spec.buildInstance()
	if err != nil {
		t.Fatal(err)
	}
	direct := solveDirect(t, ins, spec)
	if final.Value != direct {
		t.Fatalf("served job found %v, direct solve %v", final.Value, direct)
	}
}
