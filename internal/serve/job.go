// Package serve is the solver-as-a-service layer: an HTTP/JSON job API that
// admits MKP instances, queues them, and multiplexes many concurrent solve
// jobs over one shared pool of slave capacity — in-process slots or a fleet
// of mkpworker processes. It is the host the concurrently-instantiable
// core.Engine was built for: every job gets its own engine, its own metrics
// registry (merged into the server-wide exposition under a job label), its
// own trace stream, and its own checkpoint namespace, so jobs never share
// mutable state.
//
// Durability: with a data directory configured, every accepted job's spec is
// persisted before the submit call returns, every round's cooperative state
// goes through the durable checkpoint store (namespaced by job ID), and the
// final result and solution are written when the job ends. A server that
// dies — gracefully or by SIGKILL — and restarts over the same directory
// re-admits every unfinished job and resumes it from its newest checkpoint.
package serve

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/metrics"
	"repro/internal/mkp"
	"repro/internal/tabu"
)

// Spec is a job submission: the problem plus the solve parameters. Exactly
// one of Instance (inline data) and Gen (server-side generation) must be set.
type Spec struct {
	// ID is optional; the server assigns one when empty. Client-chosen IDs
	// share the checkpoint-store alphabet: [A-Za-z0-9_-], at most 128 bytes.
	ID string `json:"id,omitempty"`
	// Algorithm is SEQ, ITS, CTS1 or CTS2 (default CTS2).
	Algorithm string `json:"algorithm,omitempty"`
	// P is the job's worker budget: how many slave searchers it runs on.
	// SEQ forces 1. Bounded by the server's per-job cap and total capacity.
	P int `json:"p,omitempty"`
	// Seed fixes the run; a (Seed, P, Rounds) triple fully determines it.
	Seed uint64 `json:"seed,omitempty"`
	// Rounds is the number of master iterations (default 20).
	Rounds int `json:"rounds,omitempty"`
	// Moves is the per-slave per-round move budget (default 2000).
	Moves int64 `json:"moves,omitempty"`
	// Alpha is the ISP replacement threshold (default 0.99).
	Alpha float64 `json:"alpha,omitempty"`
	// Target stops the job early once the best reaches it (0 = disabled).
	Target float64 `json:"target,omitempty"`
	// Portfolio is a comma-separated algorithm list ("tabu,repair,assim")
	// assigned round-robin over the P slots; repetition weights the initial
	// split. Empty runs every slave on the tabu kernel, bit-identical to a
	// pre-portfolio job. Rejected at submit time when it names an unknown
	// algorithm or is combined with SEQ (which runs one tabu slave).
	Portfolio string `json:"portfolio,omitempty"`

	Instance *InstanceSpec `json:"instance,omitempty"`
	Gen      *GenSpec      `json:"gen,omitempty"`
}

// InstanceSpec carries an inline instance: profit c_j, the M×N weight matrix
// a_ij (row i = constraint i), and capacities b_i.
type InstanceSpec struct {
	Name     string      `json:"name,omitempty"`
	Profit   []float64   `json:"profit"`
	Weight   [][]float64 `json:"weight"`
	Capacity []float64   `json:"capacity"`
}

// GenSpec asks the server to generate a GK instance deterministically, so a
// load test can submit heavy problems with a few bytes of JSON.
type GenSpec struct {
	N         int     `json:"n"`
	M         int     `json:"m"`
	Tightness float64 `json:"tightness,omitempty"` // default 0.25
	Seed      uint64  `json:"seed,omitempty"`
}

// Job states, in lifecycle order. An interrupted job exists only in memory of
// a shutting-down server: on disk it simply has no result yet, which is what
// makes the restart re-admit it.
const (
	StateQueued      = "queued"
	StateRunning     = "running"
	StateDone        = "done"
	StateFailed      = "failed"
	StateInterrupted = "interrupted"
)

// Job is one admitted solve. All mutable fields are guarded by mu; the spec,
// instance and registry are set at admission and immutable afterwards.
type Job struct {
	spec Spec
	algo core.Algorithm
	port []tabu.AlgoID // parsed spec.Portfolio; nil for homogeneous tabu
	ins  *mkp.Instance
	reg  *metrics.Registry
	hub  *hub

	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{} // closed when the job reaches a terminal state

	mu          sync.Mutex
	state       string
	err         string
	canceled    bool
	resumedFrom int // round restored from a checkpoint; -1 = fresh
	round       int // rounds completed so far (live progress)
	best        float64
	submitted   time.Time
	started     time.Time
	finished    time.Time
	result      *core.Result
	resume      *core.Checkpoint
	final       *resultFile // recovered terminal summary (result not in memory)
}

// cancel requests a graceful stop: a queued job never starts, a running job
// finishes its round in progress (checkpoint already on disk) and reports the
// best found so far.
func (j *Job) cancel() {
	j.mu.Lock()
	j.canceled = true
	j.mu.Unlock()
	j.stopOnce.Do(func() { close(j.stop) })
}

func (j *Job) isCanceled() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.canceled
}

// Status is the wire view of a job.
type Status struct {
	ID        string  `json:"id"`
	State     string  `json:"state"`
	Algorithm string  `json:"algorithm"`
	Portfolio string  `json:"portfolio,omitempty"` // canonical form; empty = all tabu
	P         int     `json:"p"`
	Seed      uint64  `json:"seed"`
	Rounds    int     `json:"rounds"`
	Round     int     `json:"round"`
	Best      float64 `json:"best"`
	Instance  string  `json:"instance"`
	N         int     `json:"n"`
	M         int     `json:"m"`

	ResumedFrom int    `json:"resumed_from,omitempty"` // set (>0) when restored
	Canceled    bool   `json:"canceled,omitempty"`
	Error       string `json:"error,omitempty"`

	SubmittedAt time.Time `json:"submitted_at"`
	StartedAt   time.Time `json:"started_at,omitempty"`
	FinishedAt  time.Time `json:"finished_at,omitempty"`

	// Terminal-state extras.
	Value      float64 `json:"value,omitempty"`
	Items      int     `json:"items,omitempty"`
	TotalMoves int64   `json:"total_moves,omitempty"`
}

func (j *Job) status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID:          j.spec.ID,
		State:       j.state,
		Algorithm:   j.algo.String(),
		Portfolio:   tabu.FormatPortfolio(j.port),
		P:           j.spec.P,
		Seed:        j.spec.Seed,
		Rounds:      j.spec.Rounds,
		Round:       j.round,
		Best:        j.best,
		Instance:    j.ins.Name,
		N:           j.ins.N,
		M:           j.ins.M,
		Canceled:    j.canceled,
		Error:       j.err,
		SubmittedAt: j.submitted,
		StartedAt:   j.started,
		FinishedAt:  j.finished,
	}
	if j.resumedFrom > 0 {
		st.ResumedFrom = j.resumedFrom
	}
	if j.result != nil {
		st.Value = j.result.Best.Value
		st.Items = j.result.Best.X.Count()
		st.TotalMoves = j.result.Stats.TotalMoves
	} else if j.final != nil {
		st.Value = j.final.Value
		st.Items = j.final.Items
		st.TotalMoves = j.final.TotalMoves
	}
	return st
}

// buildInstance materializes the job's instance from the spec — inline data
// validated, or the GK generator run with the spec's own seed (deterministic,
// so a restarted server rebuilds the identical problem).
func (s *Spec) buildInstance() (*mkp.Instance, error) {
	switch {
	case s.Instance != nil && s.Gen != nil:
		return nil, fmt.Errorf("instance and gen are mutually exclusive")
	case s.Instance != nil:
		in := s.Instance
		name := in.Name
		if name == "" {
			name = "inline"
		}
		ins := &mkp.Instance{
			Name:     name,
			N:        len(in.Profit),
			M:        len(in.Capacity),
			Profit:   in.Profit,
			Weight:   in.Weight,
			Capacity: in.Capacity,
		}
		if err := ins.Validate(); err != nil {
			return nil, err
		}
		return ins, nil
	case s.Gen != nil:
		g := s.Gen
		if g.N < 1 || g.M < 1 {
			return nil, fmt.Errorf("gen: need n >= 1 and m >= 1, got %dx%d", g.N, g.M)
		}
		if g.N > 100000 || g.M > 1000 {
			return nil, fmt.Errorf("gen: %dx%d exceeds the served size cap (100000x1000)", g.N, g.M)
		}
		tight := g.Tightness
		if tight == 0 {
			tight = 0.25
		}
		if tight <= 0 || tight >= 1 {
			return nil, fmt.Errorf("gen: tightness must be in (0,1), got %v", tight)
		}
		return gen.GK(fmt.Sprintf("gen_%dx%d_s%d", g.M, g.N, g.Seed), g.N, g.M, tight, g.Seed), nil
	default:
		return nil, fmt.Errorf("need an instance (inline) or a gen spec")
	}
}
