package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"time"

	"repro/internal/ckptstore"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/mkp"
	"repro/internal/obs"
	"repro/internal/tabu"
	"repro/internal/trace"
)

// Config sizes the server.
type Config struct {
	// Dir is the persistence root. Empty disables durability: jobs live only
	// in memory and a restart forgets them.
	Dir string
	// Workers lists mkpworker addresses (fleet mode). Empty means in-process
	// mode: each job's slaves run as goroutines against the Slots budget.
	Workers []string
	// Slots is the in-process slave budget shared by all concurrent jobs
	// (ignored in fleet mode). Default: GOMAXPROCS.
	Slots int
	// MaxP caps one job's worker budget. Default: the pool capacity.
	MaxP int
	// MaxQueue bounds admitted-but-unfinished jobs; submissions beyond it
	// are refused with 503 (admission control). Default 64.
	MaxQueue int
	// DialTimeout bounds each worker dial in fleet mode. Default 5s.
	DialTimeout time.Duration
	// StreamWriteTimeout bounds each write on an /events NDJSON stream. A
	// subscriber that stops reading blocks the handler in the kernel's send
	// buffer — without a deadline that goroutine (and its hub subscription)
	// lives as long as the TCP connection, which a silent peer can hold open
	// for hours. Default 10s.
	StreamWriteTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if len(c.Workers) == 0 && c.Slots <= 0 {
		c.Slots = runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 64
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.StreamWriteTimeout <= 0 {
		c.StreamWriteTimeout = 10 * time.Second
	}
	return c
}

// Server multiplexes solve jobs over one shared slave pool. See the package
// comment for the design; New starts the scheduler, Handler exposes the API,
// Close stops everything (running jobs checkpoint and resume on restart).
type Server struct {
	cfg      Config
	pool     *pool
	userMaxP int // configured MaxP (0 = track pool capacity as the fleet resizes)

	// own is the server's registry (queue/job counters, checkpoint-store
	// metrics); gather merges it with every job's registry, each under its
	// job label, into the /metrics exposition.
	own    *metrics.Registry
	gather *metrics.Gatherer
	mx     serverMetrics

	// dialCtx cancels in-flight worker dials on shutdown — a slow worker
	// must not hold the process open (fleet mode).
	dialCtx    context.Context
	dialCancel context.CancelFunc

	mu      sync.Mutex
	jobs    map[string]*Job
	order   []string // submission order, for listing
	seq     int
	active  int // admitted and not yet terminal (admission control)
	closing bool
	queue   chan *Job
	quit    chan struct{}
	wg      sync.WaitGroup
}

type serverMetrics struct {
	submitted *metrics.Counter
	done      *metrics.Counter
	failed    *metrics.Counter
	resumed   *metrics.Counter
	queued    *metrics.Gauge
	running   *metrics.Gauge
}

// New builds the server, recovers any persisted jobs, and starts the
// scheduler. The caller owns the HTTP listener (see Handler) and must Close.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:  cfg,
		own:  metrics.NewRegistry(),
		jobs: make(map[string]*Job),
		quit: make(chan struct{}),
	}
	if len(cfg.Workers) > 0 {
		s.pool = newFleetPool(cfg.Workers)
	} else {
		s.pool = newSlotPool(cfg.Slots)
	}
	s.userMaxP = cfg.MaxP
	s.queue = make(chan *Job, cfg.MaxQueue)
	s.gather = metrics.NewGatherer()
	s.gather.Attach(s.own)
	s.own.SetHelp("serve_jobs_submitted_total", "Jobs admitted (recovered jobs included).")
	s.own.SetHelp("serve_jobs_done_total", "Jobs that reached done.")
	s.own.SetHelp("serve_jobs_failed_total", "Jobs that reached failed.")
	s.own.SetHelp("serve_jobs_resumed_total", "Recovered jobs restarted from a checkpoint.")
	s.own.SetHelp("serve_jobs_queued", "Jobs admitted and waiting for capacity.")
	s.own.SetHelp("serve_jobs_running", "Jobs currently holding pool capacity.")
	s.mx = serverMetrics{
		submitted: s.own.Counter("serve_jobs_submitted_total"),
		done:      s.own.Counter("serve_jobs_done_total"),
		failed:    s.own.Counter("serve_jobs_failed_total"),
		resumed:   s.own.Counter("serve_jobs_resumed_total"),
		queued:    s.own.Gauge("serve_jobs_queued"),
		running:   s.own.Gauge("serve_jobs_running"),
	}
	s.dialCtx, s.dialCancel = context.WithCancel(context.Background())
	if err := s.recover(); err != nil {
		return nil, err
	}
	s.wg.Add(1)
	go s.schedule()
	return s, nil
}

// Capacity reports the pool size (slots or fleet width). In fleet mode it
// moves as workers are added and removed.
func (s *Server) Capacity() int { return s.pool.capacity() }

// maxP is the per-job worker budget: the configured MaxP clamped to the
// pool's current capacity. With no configured cap it simply tracks capacity,
// so growing the fleet raises the widest admissible job.
func (s *Server) maxP() int {
	c := s.pool.capacity()
	if s.userMaxP > 0 && s.userMaxP < c {
		return s.userMaxP
	}
	return c
}

// AddWorkers admits mkpworker addresses into the fleet pool mid-flight,
// waking any job blocked on capacity. Duplicates are ignored; an address
// mid-retirement is re-admitted. Fleet mode only.
func (s *Server) AddWorkers(addrs []string) (int, error) {
	if !s.pool.isFleet {
		return 0, fmt.Errorf("server runs in-process slots, not a worker fleet")
	}
	return s.pool.addFleet(addrs), nil
}

// RemoveWorkers drains addresses out of the fleet pool. Free workers leave
// immediately; leased ones finish their current job first (retiring).
// Capacity shrinks right away either way. Fleet mode only.
func (s *Server) RemoveWorkers(addrs []string) (dropped, retiring int, err error) {
	if !s.pool.isFleet {
		return 0, 0, fmt.Errorf("server runs in-process slots, not a worker fleet")
	}
	dropped, retiring = s.pool.removeFleet(addrs)
	return dropped, retiring, nil
}

// admit validates a spec, fills defaults, builds the instance and the job's
// private observability (registry, trace hub). It does not register or
// enqueue — recovery and submit share it.
func (s *Server) admit(spec Spec) (*Job, error) {
	if spec.Algorithm == "" {
		spec.Algorithm = "CTS2"
	}
	algo, err := core.ParseAlgorithm(spec.Algorithm)
	if err != nil {
		return nil, err
	}
	var port []tabu.AlgoID
	if spec.Portfolio != "" {
		if algo == core.SEQ {
			return nil, fmt.Errorf("portfolio %q: SEQ runs one tabu slave, submit a parallel algorithm", spec.Portfolio)
		}
		if port, err = tabu.ParsePortfolio(spec.Portfolio); err != nil {
			return nil, err
		}
	}
	if spec.P <= 0 {
		spec.P = min(2, s.maxP())
	}
	if algo == core.SEQ {
		spec.P = 1
	}
	if spec.P > s.maxP() {
		return nil, fmt.Errorf("p=%d exceeds the per-job worker budget %d", spec.P, s.maxP())
	}
	if spec.Rounds <= 0 {
		spec.Rounds = 20
	}
	if spec.Rounds > 1_000_000 {
		return nil, fmt.Errorf("rounds=%d exceeds the served cap", spec.Rounds)
	}
	if spec.Moves <= 0 {
		spec.Moves = 2000
	}
	if spec.ID != "" && !ckptstore.ValidJobID(spec.ID) {
		return nil, fmt.Errorf("job id %q: want [A-Za-z0-9_-], at most 128 bytes", spec.ID)
	}
	ins, err := spec.buildInstance()
	if err != nil {
		return nil, err
	}
	j := &Job{
		spec:        spec,
		algo:        algo,
		port:        port,
		ins:         ins,
		reg:         metrics.NewRegistry(),
		hub:         newHub(),
		stop:        make(chan struct{}),
		done:        make(chan struct{}),
		state:       StateQueued,
		resumedFrom: -1,
		submitted:   time.Now(),
	}
	return j, nil
}

// register adds the job to the server's tables and attaches its registry to
// the merged exposition under its job label. The caller has set spec.ID.
func (s *Server) register(j *Job) {
	s.mu.Lock()
	s.jobs[j.spec.ID] = j
	s.order = append(s.order, j.spec.ID)
	s.mu.Unlock()
	s.gather.Attach(j.reg, "job", j.spec.ID)
	s.mx.submitted.Inc()
}

func (s *Server) enqueue(j *Job) {
	s.mx.queued.Add(1)
	s.queue <- j
}

// Submit admits a job through the same path the HTTP handler uses. It
// persists the spec before returning, so an accepted submission survives an
// immediate crash.
func (s *Server) Submit(spec Spec) (*Job, error) {
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		return nil, fmt.Errorf("server is shutting down")
	}
	if s.active >= s.cfg.MaxQueue {
		s.mu.Unlock()
		return nil, errBusy
	}
	s.active++
	s.mu.Unlock()

	j, err := s.admit(spec)
	if err != nil {
		s.mu.Lock()
		s.active--
		s.mu.Unlock()
		return nil, err
	}
	s.mu.Lock()
	if j.spec.ID == "" {
		s.seq++
		j.spec.ID = fmt.Sprintf("j%04d", s.seq)
	} else if _, dup := s.jobs[j.spec.ID]; dup {
		s.active--
		s.mu.Unlock()
		return nil, fmt.Errorf("job id %q already exists", j.spec.ID)
	}
	s.mu.Unlock()
	if err := s.saveSpec(j); err != nil {
		s.mu.Lock()
		s.active--
		s.mu.Unlock()
		return nil, err
	}
	s.register(j)
	s.enqueue(j)
	return j, nil
}

// errBusy marks admission-control refusals so the handler maps them to 503.
var errBusy = fmt.Errorf("job queue is full, retry later")

// schedule is the single consumer of the queue: strict FIFO, blocking on the
// pool until the head job's full worker budget is free (no overtaking).
func (s *Server) schedule() {
	defer s.wg.Done()
	for {
		select {
		case <-s.quit:
			return
		case j := <-s.queue:
			s.mx.queued.Add(-1)
			if j.isCanceled() {
				s.finish(j, nil, fmt.Errorf("canceled before start"))
				continue
			}
			lease, ok := s.pool.acquire(j.spec.P)
			if !ok {
				// Pool closed: shutdown. The job stays unfinished on disk and
				// resumes on restart.
				s.interrupt(j)
				continue
			}
			if j.isCanceled() {
				s.pool.release(lease, j.spec.P)
				s.finish(j, nil, fmt.Errorf("canceled before start"))
				continue
			}
			s.wg.Add(1)
			go func(j *Job, lease []string) {
				defer s.wg.Done()
				defer s.pool.release(lease, j.spec.P)
				s.runJob(j, lease)
			}(j, lease)
		}
	}
}

// runJob drives one job through its own engine.
func (s *Server) runJob(j *Job, lease []string) {
	j.mu.Lock()
	j.state = StateRunning
	j.started = time.Now()
	resume := j.resume
	j.mu.Unlock()
	s.mx.running.Add(1)
	defer s.mx.running.Add(-1)
	if resume != nil {
		s.mx.resumed.Inc()
	}

	opts := core.Options{
		P:          j.spec.P,
		Seed:       j.spec.Seed,
		Rounds:     j.spec.Rounds,
		RoundMoves: j.spec.Moves,
		Alpha:      j.spec.Alpha,
		Target:     j.spec.Target,
		Portfolio:  j.port,
		Metrics:    j.reg,
		Tracer:     trace.Multi{jobTracer{j}, metrics.NewBridge(j.reg)},
		Stop:       j.stop,
		Resume:     resume,
	}
	if len(lease) > 0 {
		opts.Workers = lease
		opts.DialTimeout = s.cfg.DialTimeout
		opts.DialContext = s.dialCtx
	}
	if s.cfg.Dir != "" {
		store, err := s.openStore(j.spec.ID)
		if err != nil {
			s.finish(j, nil, err)
			return
		}
		opts.OnCheckpoint = func(c *core.Checkpoint) {
			var buf bytes.Buffer
			if err := core.SaveCheckpoint(&buf, c); err != nil {
				return
			}
			_ = store.Save(buf.Bytes())
		}
	}

	eng, err := core.NewEngine(j.ins, j.algo, opts)
	if err != nil {
		s.finish(j, nil, err)
		return
	}
	res, err := eng.Run()
	eng.Close()
	if err != nil {
		s.finish(j, nil, err)
		return
	}
	// A stop that came from shutdown (not from the client) leaves the job
	// unfinished so the restart resumes it from its checkpoint.
	if s.isClosing() && !j.isCanceled() && !jobComplete(j, res) {
		s.interrupt(j)
		return
	}
	s.finish(j, res, nil)
}

// jobComplete reports whether res represents a natural end of the job (all
// rounds run, or the target reached) rather than a stop-induced early exit.
func jobComplete(j *Job, res *core.Result) bool {
	if res.Stats.Rounds >= j.spec.Rounds {
		return true
	}
	return j.spec.Target > 0 && res.Best.Value >= j.spec.Target-1e-9
}

// finish moves a job to its terminal state, persists the outcome, publishes
// the terminal event and closes the stream.
func (s *Server) finish(j *Job, res *core.Result, err error) {
	j.mu.Lock()
	j.finished = time.Now()
	j.result = res
	kind := "done"
	if err != nil {
		j.state = StateFailed
		j.err = err.Error()
		kind = "failed"
	} else {
		j.state = StateDone
		j.round = res.Stats.Rounds
		j.best = res.Best.Value
	}
	round, best := j.round, j.best
	detail := j.err
	j.mu.Unlock()

	if kind == "done" {
		s.mx.done.Inc()
	} else {
		s.mx.failed.Inc()
	}
	if perr := s.persistResult(j); perr != nil && err == nil {
		// The run succeeded but the durable record did not: surface it.
		j.mu.Lock()
		j.state = StateFailed
		j.err = fmt.Sprintf("persist result: %v", perr)
		detail, kind = j.err, "failed"
		j.mu.Unlock()
	}
	ev := j.progressEvent(kind, round, best)
	ev.Detail = detail
	j.hub.publish(ev)
	j.hub.close()
	s.mu.Lock()
	s.active--
	s.mu.Unlock()
	close(j.done)
}

// interrupt marks a job cut short by shutdown. Nothing terminal is persisted:
// on disk the job is still "spec without result", so restart re-admits it.
func (s *Server) interrupt(j *Job) {
	j.mu.Lock()
	j.state = StateInterrupted
	round, best := j.round, j.best
	j.mu.Unlock()
	ev := j.progressEvent("interrupted", round, best)
	j.hub.publish(ev)
	j.hub.close()
	close(j.done)
}

func (s *Server) isClosing() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closing
}

// Job returns a job by ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs lists all jobs in submission order.
func (s *Server) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id])
	}
	return out
}

// Close stops the server: no new submissions, queued jobs are parked,
// running jobs finish their round in progress (their checkpoint is already
// durable) and are left unfinished on disk for the next incarnation to
// resume. In-flight worker dials are canceled.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		return nil
	}
	s.closing = true
	jobs := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()

	s.dialCancel()
	for _, j := range jobs {
		j.stopOnce.Do(func() { close(j.stop) })
	}
	close(s.quit)
	s.pool.close()
	s.wg.Wait()
	// Park whatever is still queued so their streams end cleanly.
	for {
		select {
		case j := <-s.queue:
			s.mx.queued.Add(-1)
			s.interrupt(j)
		default:
			return nil
		}
	}
}

// Handler returns the HTTP API:
//
//	POST   /jobs              submit a Spec, returns the job status (202)
//	GET    /jobs              list job statuses
//	GET    /jobs/{id}         one job's status
//	DELETE /jobs/{id}         cancel (graceful: the round in progress finishes)
//	GET    /jobs/{id}/events  NDJSON progress stream (backlog + live)
//	GET    /jobs/{id}/solution  best solution, mkpverify-compatible text
//	GET    /jobs/{id}/result  terminal summary JSON
//	GET    /fleet             fleet membership: free/leased/retiring workers
//	POST   /fleet             add/remove worker addresses mid-flight
//	GET    /healthz           liveness + capacity
//	GET    /metrics           merged Prometheus exposition, one label per job
//	GET    /metrics.json      merged snapshot
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	obsMux := obs.HandlerSource(s.gather)
	mux.Handle("/metrics", obsMux)
	mux.Handle("/metrics.json", obsMux)
	mux.Handle("/debug/", obsMux)

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		s.mu.Lock()
		active := s.active
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, map[string]any{
			"ok": true, "capacity": s.pool.capacity(), "active": active,
			"fleet": s.pool.isFleet,
		})
	})
	mux.HandleFunc("GET /fleet", s.handleFleetGet)
	mux.HandleFunc("POST /fleet", s.handleFleetPost)
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", func(w http.ResponseWriter, _ *http.Request) {
		jobs := s.Jobs()
		out := make([]Status, 0, len(jobs))
		for _, j := range jobs {
			out = append(out, j.status())
		}
		writeJSON(w, http.StatusOK, out)
	})
	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		if j, ok := s.Job(r.PathValue("id")); ok {
			writeJSON(w, http.StatusOK, j.status())
			return
		}
		http.Error(w, "no such job", http.StatusNotFound)
	})
	mux.HandleFunc("DELETE /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		j, ok := s.Job(r.PathValue("id"))
		if !ok {
			http.Error(w, "no such job", http.StatusNotFound)
			return
		}
		j.cancel()
		writeJSON(w, http.StatusAccepted, map[string]string{"id": j.spec.ID, "state": "canceling"})
	})
	mux.HandleFunc("GET /jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /jobs/{id}/solution", s.handleSolution)
	mux.HandleFunc("GET /jobs/{id}/result", s.handleResult)
	return mux
}

// handleFleetGet reports the fleet membership: free workers, workers leased
// to running jobs, and leased workers already marked for removal.
func (s *Server) handleFleetGet(w http.ResponseWriter, _ *http.Request) {
	if !s.pool.isFleet {
		http.Error(w, "server runs in-process slots, not a worker fleet", http.StatusConflict)
		return
	}
	free, leased, retiring := s.pool.fleetView()
	writeJSON(w, http.StatusOK, map[string]any{
		"capacity": s.pool.capacity(), "max_p": s.maxP(),
		"free": free, "leased": leased, "retiring": retiring,
	})
}

// handleFleetPost mutates the fleet membership:
//
//	POST /fleet {"add": ["host:port", ...], "remove": ["host:port", ...]}
//
// Adds take effect immediately (a job blocked on capacity wakes up); removes
// of leased workers defer until their job releases them.
func (s *Server) handleFleetPost(w http.ResponseWriter, r *http.Request) {
	if !s.pool.isFleet {
		http.Error(w, "server runs in-process slots, not a worker fleet", http.StatusConflict)
		return
	}
	var req struct {
		Add    []string `json:"add"`
		Remove []string `json:"remove"`
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		http.Error(w, "bad fleet request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(req.Add) == 0 && len(req.Remove) == 0 {
		http.Error(w, "fleet request needs add or remove", http.StatusBadRequest)
		return
	}
	added := s.pool.addFleet(req.Add)
	dropped, retiring := s.pool.removeFleet(req.Remove)
	writeJSON(w, http.StatusOK, map[string]any{
		"added": added, "removed": dropped, "retiring": retiring,
		"capacity": s.pool.capacity(), "max_p": s.maxP(),
	})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		http.Error(w, "bad spec: "+err.Error(), http.StatusBadRequest)
		return
	}
	j, err := s.Submit(spec)
	if err != nil {
		code := http.StatusBadRequest
		if err == errBusy {
			code = http.StatusServiceUnavailable
			w.Header().Set("Retry-After", "1")
		}
		http.Error(w, err.Error(), code)
		return
	}
	writeJSON(w, http.StatusAccepted, j.status())
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		http.Error(w, "no such job", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	// Every write gets a fresh deadline: a subscriber that stops draining its
	// socket turns the next Encode into an i/o timeout instead of parking this
	// goroutine in the kernel send buffer for the life of the connection. The
	// deadline is cleared on exit so a keep-alive connection is reusable.
	rc := http.NewResponseController(w)
	deadline := func() { _ = rc.SetWriteDeadline(time.Now().Add(s.cfg.StreamWriteTimeout)) }
	defer func() { _ = rc.SetWriteDeadline(time.Time{}) }()
	backlog, ch, cancelSub := j.hub.subscribe()
	defer cancelSub()
	for _, e := range backlog {
		deadline()
		if enc.Encode(e) != nil {
			return
		}
	}
	if flusher != nil {
		flusher.Flush()
	}
	for {
		select {
		case e, open := <-ch:
			if !open {
				return
			}
			deadline()
			if enc.Encode(e) != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleSolution(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		http.Error(w, "no such job", http.StatusNotFound)
		return
	}
	j.mu.Lock()
	res, state, name := j.result, j.state, j.ins.Name
	j.mu.Unlock()
	if res != nil {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		var buf bytes.Buffer
		if err := mkp.WriteSolution(&buf, name, res.Best); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		_, _ = w.Write(buf.Bytes())
		return
	}
	// Recovered terminal job: the solution lives on disk.
	if state == StateDone && s.cfg.Dir != "" {
		http.ServeFile(w, r, s.jobDir(j.spec.ID)+"/solution.txt")
		return
	}
	http.Error(w, "job has no solution (state "+state+")", http.StatusConflict)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		http.Error(w, "no such job", http.StatusNotFound)
		return
	}
	st := j.status()
	if st.State != StateDone && st.State != StateFailed {
		http.Error(w, "job not finished (state "+st.State+")", http.StatusConflict)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
