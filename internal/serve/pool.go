package serve

import "sync"

// pool is the shared slave-capacity allocator. In slot mode it counts
// abstract in-process slots (each job's P slaves run as goroutines); in fleet
// mode it hands out leases of concrete mkpworker addresses. A worker process
// serves masters strictly sequentially (accept → serve → accept), so two
// concurrent jobs must hold disjoint leases — that exclusivity is exactly
// what the pool provides.
//
// acquire blocks until the full request is available. The scheduler is the
// only acquirer and processes jobs in submission order, which makes admission
// strictly FIFO with no overtaking: a wide job at the head waits for its P
// units, and narrower jobs behind it wait for the head — trading a little
// utilization for starvation-freedom.
//
// A fleet pool is elastic: addFleet admits new worker addresses mid-flight
// (waking a wide job blocked on capacity) and removeFleet drains addresses
// out. Removing a free address takes effect immediately; removing a leased
// one marks it retiring, and the lease release drops it instead of returning
// it — a running job is never yanked off its workers.
type pool struct {
	mu      sync.Mutex
	cond    *sync.Cond
	slots   int      // free slots (slot mode)
	fleet   []string // free worker addresses (fleet mode)
	isFleet bool
	closed  bool
	total   int

	known    map[string]bool // fleet: every address currently owned by the pool
	retiring map[string]bool // fleet: leased addresses dropped on release
}

func newSlotPool(n int) *pool {
	p := &pool{slots: n, total: n}
	p.cond = sync.NewCond(&p.mu)
	return p
}

func newFleetPool(addrs []string) *pool {
	p := &pool{isFleet: true, known: make(map[string]bool), retiring: make(map[string]bool)}
	p.cond = sync.NewCond(&p.mu)
	p.addFleet(addrs)
	return p
}

// capacity is the pool's total size — the upper bound on any job's P.
func (p *pool) capacity() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.total
}

// acquire blocks until n units are free and takes them. In fleet mode it
// returns the leased addresses; in slot mode the lease is nil. ok is false
// when the pool was closed while waiting.
func (p *pool) acquire(n int) (lease []string, ok bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if p.closed {
			return nil, false
		}
		if p.isFleet {
			if len(p.fleet) >= n {
				lease = append([]string(nil), p.fleet[:n]...)
				p.fleet = p.fleet[n:]
				return lease, true
			}
		} else if p.slots >= n {
			p.slots -= n
			return nil, true
		}
		p.cond.Wait()
	}
}

// release returns a lease (fleet mode) or n slots (slot mode) to the pool.
// Retiring addresses complete their removal here instead of going back into
// circulation.
func (p *pool) release(lease []string, n int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.isFleet {
		for _, addr := range lease {
			if p.retiring[addr] {
				delete(p.retiring, addr)
				delete(p.known, addr)
				continue
			}
			p.fleet = append(p.fleet, addr)
		}
	} else {
		p.slots += n
	}
	p.cond.Broadcast()
}

// addFleet admits new worker addresses (fleet mode). Addresses the pool
// already owns are ignored; an address mid-retirement is re-admitted by
// clearing its retiring mark. Returns how many addresses were actually added.
func (p *pool) addFleet(addrs []string) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	added := 0
	for _, addr := range addrs {
		if addr == "" {
			continue
		}
		if p.known[addr] {
			if p.retiring[addr] {
				delete(p.retiring, addr)
				p.total++
				added++
			}
			continue
		}
		p.known[addr] = true
		p.fleet = append(p.fleet, addr)
		p.total++
		added++
	}
	if added > 0 {
		p.cond.Broadcast()
	}
	return added
}

// removeFleet drains worker addresses out of the pool (fleet mode). Free
// addresses leave immediately (dropped); leased ones are marked retiring and
// leave when their job releases them (deferred). Unknown addresses are
// ignored. Capacity shrinks for both kinds right away, so admission stops
// counting on a retiring worker before it is actually gone.
func (p *pool) removeFleet(addrs []string) (dropped, deferred int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, addr := range addrs {
		if !p.known[addr] || p.retiring[addr] {
			continue
		}
		if i := indexOf(p.fleet, addr); i >= 0 {
			p.fleet = append(p.fleet[:i], p.fleet[i+1:]...)
			delete(p.known, addr)
			p.total--
			dropped++
			continue
		}
		p.retiring[addr] = true
		p.total--
		deferred++
	}
	return dropped, deferred
}

// fleetView snapshots the membership for /fleet: free addresses, leased
// addresses (held by running jobs), and the leased subset already marked
// retiring.
func (p *pool) fleetView() (free, leased, retiring []string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	free = append([]string(nil), p.fleet...)
	onShelf := make(map[string]bool, len(free))
	for _, addr := range free {
		onShelf[addr] = true
	}
	for addr := range p.known {
		switch {
		case onShelf[addr]:
		case p.retiring[addr]:
			retiring = append(retiring, addr)
		default:
			leased = append(leased, addr)
		}
	}
	return free, leased, retiring
}

func indexOf(s []string, want string) int {
	for i, v := range s {
		if v == want {
			return i
		}
	}
	return -1
}

// close wakes any blocked acquire with ok=false; subsequent acquires fail.
func (p *pool) close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.closed = true
	p.cond.Broadcast()
}
