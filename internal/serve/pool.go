package serve

import "sync"

// pool is the shared slave-capacity allocator. In slot mode it counts
// abstract in-process slots (each job's P slaves run as goroutines); in fleet
// mode it hands out leases of concrete mkpworker addresses. A worker process
// serves masters strictly sequentially (accept → serve → accept), so two
// concurrent jobs must hold disjoint leases — that exclusivity is exactly
// what the pool provides.
//
// acquire blocks until the full request is available. The scheduler is the
// only acquirer and processes jobs in submission order, which makes admission
// strictly FIFO with no overtaking: a wide job at the head waits for its P
// units, and narrower jobs behind it wait for the head — trading a little
// utilization for starvation-freedom.
type pool struct {
	mu    sync.Mutex
	cond  *sync.Cond
	slots int      // free slots (slot mode)
	fleet []string // free worker addresses (fleet mode)
	isFleet bool
	closed  bool
	total   int
}

func newSlotPool(n int) *pool {
	p := &pool{slots: n, total: n}
	p.cond = sync.NewCond(&p.mu)
	return p
}

func newFleetPool(addrs []string) *pool {
	p := &pool{fleet: append([]string(nil), addrs...), isFleet: true, total: len(addrs)}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// capacity is the pool's total size — the upper bound on any job's P.
func (p *pool) capacity() int { return p.total }

// acquire blocks until n units are free and takes them. In fleet mode it
// returns the leased addresses; in slot mode the lease is nil. ok is false
// when the pool was closed while waiting.
func (p *pool) acquire(n int) (lease []string, ok bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if p.closed {
			return nil, false
		}
		if p.isFleet {
			if len(p.fleet) >= n {
				lease = append([]string(nil), p.fleet[:n]...)
				p.fleet = p.fleet[n:]
				return lease, true
			}
		} else if p.slots >= n {
			p.slots -= n
			return nil, true
		}
		p.cond.Wait()
	}
}

// release returns a lease (fleet mode) or n slots (slot mode) to the pool.
func (p *pool) release(lease []string, n int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.isFleet {
		p.fleet = append(p.fleet, lease...)
	} else {
		p.slots += n
	}
	p.cond.Broadcast()
}

// close wakes any blocked acquire with ok=false; subsequent acquires fail.
func (p *pool) close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.closed = true
	p.cond.Broadcast()
}
