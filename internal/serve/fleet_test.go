package serve

import (
	"bytes"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"sort"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/transport/wire"
)

// startFleet brings up p worker listeners that behave exactly like
// cmd/mkpworker: accept one master, serve it to completion, loop back to
// accept — so a worker released by one job is immediately leasable by the
// next.
func startFleet(t *testing.T, p int) []string {
	t.Helper()
	addrs := make([]string, p)
	for i := 0; i < p; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ln.Close() })
		addrs[i] = ln.Addr().String()
		go func() {
			for {
				conn, err := ln.Accept()
				if err != nil {
					return
				}
				sess, hello, err := wire.Accept(conn, nil)
				if err != nil {
					conn.Close()
					continue
				}
				core.Slave(sess, hello.Node, hello.Ins, hello.Seed)
				conn.Close()
			}
		}()
	}
	return addrs
}

// TestFleetModeMultiplexesJobs: 4 jobs of P=2 share a 4-worker fleet. At
// most two run at once (disjoint leases); the rest wait their turn; all
// complete with the value the same run finds on in-process slaves.
func TestFleetModeMultiplexesJobs(t *testing.T) {
	fleet := startFleet(t, 4)
	s, ts := newTestServer(t, Config{Workers: fleet})
	if s.Capacity() != 4 {
		t.Fatalf("fleet capacity %d", s.Capacity())
	}
	const jobs = 4
	ids := make([]string, jobs)
	specs := make([]Spec, jobs)
	for i := 0; i < jobs; i++ {
		specs[i] = genSpec(uint64(200+i), 2, 3)
		st, resp := submit(t, ts, specs[i])
		if resp.StatusCode != 202 {
			t.Fatalf("submit %d: %d", i, resp.StatusCode)
		}
		ids[i] = st.ID
	}
	for i, id := range ids {
		final := waitState(t, ts, id, StateDone)
		ins, err := specs[i].buildInstance()
		if err != nil {
			t.Fatal(err)
		}
		// A healthy fleet reaches the identical final best as in-process
		// slaves for a fixed seed (the master's decisions are a pure function
		// of the per-slot results).
		if want := solveDirect(t, ins, specs[i]); final.Value != want {
			t.Fatalf("job %s over the fleet found %v, in-process finds %v", id, final.Value, want)
		}
	}
}

// TestFleetPoolElastic pins the pool-level membership semantics the /fleet
// endpoints rely on: adds dedupe and take effect immediately, removing a free
// address drops it at once, removing a leased address defers until release,
// and a released retiring address never goes back into circulation.
func TestFleetPoolElastic(t *testing.T) {
	p := newFleetPool([]string{"a:1", "b:2"})
	if got := p.addFleet([]string{"b:2", "c:3", ""}); got != 1 {
		t.Fatalf("addFleet admitted %d, want 1 (dedupe + blank skip)", got)
	}
	if p.capacity() != 3 {
		t.Fatalf("capacity %d, want 3", p.capacity())
	}

	lease, ok := p.acquire(2) // takes a:1, b:2
	if !ok || len(lease) != 2 {
		t.Fatalf("acquire = %v, %v", lease, ok)
	}
	dropped, deferred := p.removeFleet([]string{"c:3", lease[0], "nope:0"})
	if dropped != 1 || deferred != 1 {
		t.Fatalf("removeFleet = %d dropped, %d deferred; want 1, 1", dropped, deferred)
	}
	if p.capacity() != 1 {
		t.Fatalf("capacity after removals %d, want 1 (both shrink immediately)", p.capacity())
	}
	free, leased, retiring := p.fleetView()
	if len(free) != 0 || len(leased) != 1 || len(retiring) != 1 {
		t.Fatalf("view = free %v leased %v retiring %v", free, leased, retiring)
	}

	p.release(lease, len(lease))
	free, _, retiring = p.fleetView()
	if len(retiring) != 0 {
		t.Fatalf("retiring survived release: %v", retiring)
	}
	sort.Strings(free)
	if len(free) != 1 || free[0] != lease[1] {
		t.Fatalf("free after release = %v, want only %s (the retired one is gone)", free, lease[1])
	}
	if p.capacity() != 1 {
		t.Fatalf("capacity after release %d, want 1", p.capacity())
	}
}

func postFleet(t *testing.T, ts *httptest.Server, add, remove []string) map[string]any {
	t.Helper()
	body, _ := json.Marshal(map[string][]string{"add": add, "remove": remove})
	resp, err := http.Post(ts.URL+"/fleet", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /fleet: %d", resp.StatusCode)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestFleetEndpointsGrowAndShrink drives the elastic membership over HTTP: a
// job too wide for the initial fleet is admitted once workers are added, and
// removal shrinks capacity (and the admissible job width) back down.
func TestFleetEndpointsGrowAndShrink(t *testing.T) {
	initial := startFleet(t, 2)
	s, ts := newTestServer(t, Config{Workers: initial})

	// Too wide for the 2-worker fleet: refused at admission.
	if _, resp := submit(t, ts, genSpec(400, 4, 2)); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("p=4 against a 2-worker fleet: %d, want 400", resp.StatusCode)
	}

	// Grow the fleet over HTTP; the same job now fits and completes.
	extra := startFleet(t, 2)
	out := postFleet(t, ts, extra, nil)
	if out["added"].(float64) != 2 || out["capacity"].(float64) != 4 {
		t.Fatalf("grow reply %v", out)
	}
	st, resp := submit(t, ts, genSpec(400, 4, 2))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("p=4 after growth: %d", resp.StatusCode)
	}
	waitState(t, ts, st.ID, StateDone)

	// Shrink back: free workers drop immediately, capacity follows.
	out = postFleet(t, ts, nil, extra)
	if out["removed"].(float64) != 2 || out["retiring"].(float64) != 0 {
		t.Fatalf("shrink reply %v", out)
	}
	if s.Capacity() != 2 {
		t.Fatalf("capacity after shrink %d, want 2", s.Capacity())
	}
	if _, resp := submit(t, ts, genSpec(401, 4, 2)); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("p=4 after shrink: %d, want 400", resp.StatusCode)
	}

	// GET /fleet agrees with the pool.
	gresp, err := http.Get(ts.URL + "/fleet")
	if err != nil {
		t.Fatal(err)
	}
	defer gresp.Body.Close()
	var view struct {
		Capacity int      `json:"capacity"`
		MaxP     int      `json:"max_p"`
		Free     []string `json:"free"`
		Leased   []string `json:"leased"`
		Retiring []string `json:"retiring"`
	}
	if err := json.NewDecoder(gresp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	sort.Strings(view.Free)
	want := append([]string(nil), initial...)
	sort.Strings(want)
	if view.Capacity != 2 || view.MaxP != 2 || len(view.Leased) != 0 || len(view.Retiring) != 0 {
		t.Fatalf("GET /fleet = %+v", view)
	}
	for i, addr := range want {
		if view.Free[i] != addr {
			t.Fatalf("GET /fleet free = %v, want %v", view.Free, want)
		}
	}
}

// TestFleetRemoveLeasedDefers: removing a worker mid-job retires it only
// after the job releases it, so the running job keeps its lease to the end.
func TestFleetRemoveLeasedDefers(t *testing.T) {
	fleet := startFleet(t, 2)
	s, ts := newTestServer(t, Config{Workers: fleet})

	st, resp := submit(t, ts, genSpec(402, 2, 4))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	// Wait until the job holds the lease, then remove its workers.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, leased, _ := s.pool.fleetView(); len(leased) == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never leased the fleet")
		}
		time.Sleep(5 * time.Millisecond)
	}
	out := postFleet(t, ts, nil, fleet)
	if out["removed"].(float64) != 0 || out["retiring"].(float64) != 2 {
		t.Fatalf("remove-leased reply %v", out)
	}
	final := waitState(t, ts, st.ID, StateDone)
	if final.Value <= 0 {
		t.Fatalf("job with retiring workers finished badly: %+v", final)
	}
	// The lease release completes the removal: the pool is empty.
	deadline = time.Now().Add(10 * time.Second)
	for {
		free, leased, retiring := s.pool.fleetView()
		if len(free) == 0 && len(leased) == 0 && len(retiring) == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("retiring workers never drained: free %v leased %v retiring %v", free, leased, retiring)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if s.Capacity() != 0 {
		t.Fatalf("capacity %d, want 0", s.Capacity())
	}
}

// TestFleetEndpointsRejectSlotMode: a slot-mode server has no fleet to edit.
func TestFleetEndpointsRejectSlotMode(t *testing.T) {
	_, ts := newTestServer(t, Config{Slots: 2})
	resp, err := http.Get(ts.URL + "/fleet")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("GET /fleet in slot mode: %d, want 409", resp.StatusCode)
	}
	body, _ := json.Marshal(map[string][]string{"add": {"x:1"}})
	presp, err := http.Post(ts.URL+"/fleet", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	presp.Body.Close()
	if presp.StatusCode != http.StatusConflict {
		t.Fatalf("POST /fleet in slot mode: %d, want 409", presp.StatusCode)
	}
}
