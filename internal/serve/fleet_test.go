package serve

import (
	"net"
	"testing"

	"repro/internal/core"
	"repro/internal/transport/wire"
)

// startFleet brings up p worker listeners that behave exactly like
// cmd/mkpworker: accept one master, serve it to completion, loop back to
// accept — so a worker released by one job is immediately leasable by the
// next.
func startFleet(t *testing.T, p int) []string {
	t.Helper()
	addrs := make([]string, p)
	for i := 0; i < p; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ln.Close() })
		addrs[i] = ln.Addr().String()
		go func() {
			for {
				conn, err := ln.Accept()
				if err != nil {
					return
				}
				sess, hello, err := wire.Accept(conn, nil)
				if err != nil {
					conn.Close()
					continue
				}
				core.Slave(sess, hello.Node, hello.Ins, hello.Seed)
				conn.Close()
			}
		}()
	}
	return addrs
}

// TestFleetModeMultiplexesJobs: 4 jobs of P=2 share a 4-worker fleet. At
// most two run at once (disjoint leases); the rest wait their turn; all
// complete with the value the same run finds on in-process slaves.
func TestFleetModeMultiplexesJobs(t *testing.T) {
	fleet := startFleet(t, 4)
	s, ts := newTestServer(t, Config{Workers: fleet})
	if s.Capacity() != 4 {
		t.Fatalf("fleet capacity %d", s.Capacity())
	}
	const jobs = 4
	ids := make([]string, jobs)
	specs := make([]Spec, jobs)
	for i := 0; i < jobs; i++ {
		specs[i] = genSpec(uint64(200+i), 2, 3)
		st, resp := submit(t, ts, specs[i])
		if resp.StatusCode != 202 {
			t.Fatalf("submit %d: %d", i, resp.StatusCode)
		}
		ids[i] = st.ID
	}
	for i, id := range ids {
		final := waitState(t, ts, id, StateDone)
		ins, err := specs[i].buildInstance()
		if err != nil {
			t.Fatal(err)
		}
		// A healthy fleet reaches the identical final best as in-process
		// slaves for a fixed seed (the master's decisions are a pure function
		// of the per-slot results).
		if want := solveDirect(t, ins, specs[i]); final.Value != want {
			t.Fatalf("job %s over the fleet found %v, in-process finds %v", id, final.Value, want)
		}
	}
}
