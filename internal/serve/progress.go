package serve

import (
	"sync"

	"repro/internal/trace"
)

// Event is one progress record on a job's stream: a completed rendezvous
// round with the best-so-far and the farm traffic, or a terminal marker.
type Event struct {
	Job   string  `json:"job"`
	Seq   int     `json:"seq"`
	Kind  string  `json:"kind"` // "round", "done", "failed", "interrupted"
	Round int     `json:"round"`
	Best  float64 `json:"best"`
	// Messages and Bytes are the job's cumulative farm traffic (in-process
	// mailboxes or wire frames), read from the job's own metric registry.
	Messages int64  `json:"messages"`
	Bytes    int64  `json:"bytes"`
	Detail   string `json:"detail,omitempty"`
}

// hub fans a job's progress out to any number of stream subscribers and
// keeps a bounded backlog so a late subscriber still sees how the job got
// where it is. Publishing never blocks: a subscriber that stops draining has
// its channel dropped, not the solver stalled.
type hub struct {
	mu     sync.Mutex
	ring   []Event
	seq    int
	subs   map[chan Event]struct{}
	closed bool
}

const hubBacklog = 256

func newHub() *hub {
	return &hub{subs: make(map[chan Event]struct{})}
}

func (h *hub) publish(e Event) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.seq++
	e.Seq = h.seq
	h.ring = append(h.ring, e)
	if len(h.ring) > hubBacklog {
		h.ring = h.ring[len(h.ring)-hubBacklog:]
	}
	for ch := range h.subs {
		select {
		case ch <- e:
		default:
			// Slow consumer: cut it loose rather than hold the lock hostage.
			delete(h.subs, ch)
			close(ch)
		}
	}
}

// subscribe returns the backlog plus a live channel; cancel detaches it.
// After the hub closes (job ended) the channel is closed once drained.
func (h *hub) subscribe() (backlog []Event, ch chan Event, cancel func()) {
	h.mu.Lock()
	defer h.mu.Unlock()
	backlog = append([]Event(nil), h.ring...)
	ch = make(chan Event, 64)
	if h.closed {
		close(ch)
		return backlog, ch, func() {}
	}
	h.subs[ch] = struct{}{}
	return backlog, ch, func() {
		h.mu.Lock()
		defer h.mu.Unlock()
		if _, live := h.subs[ch]; live {
			delete(h.subs, ch)
			close(ch)
		}
	}
}

// close ends the stream: subscribers' channels are closed and later
// subscribers get only the backlog.
func (h *hub) close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for ch := range h.subs {
		delete(h.subs, ch)
		close(ch)
	}
}

// jobTracer adapts the engine's trace stream into job progress: every round
// start updates the job's live round/best and publishes an Event carrying
// the traffic counters from the job's own registry. It satisfies
// trace.Recorder and is safe for the concurrent emit the contract demands
// (round starts come only from the master goroutine; other kinds are
// ignored here and flow to the metrics bridge instead).
type jobTracer struct {
	j *Job
}

func (t jobTracer) Record(e trace.Event) {
	if e.Kind != trace.KindRoundStart {
		return
	}
	t.j.mu.Lock()
	t.j.round = e.Round
	t.j.best = e.Value
	t.j.mu.Unlock()
	t.j.hub.publish(t.j.progressEvent("round", e.Round, e.Value))
}

// progressEvent assembles an Event with the job's cumulative traffic. The
// snapshot is cheap (the job registry holds a handful of families) and reads
// the same counters /metrics exposes.
func (j *Job) progressEvent(kind string, round int, best float64) Event {
	ev := Event{Job: j.spec.ID, Kind: kind, Round: round, Best: best}
	if j.reg != nil {
		s := j.reg.Snapshot()
		ev.Messages = s.SumCounters("farm_messages_total") + s.SumCounters("wire_frames_total")
		ev.Bytes = s.SumCounters("farm_bytes_total") + s.SumCounters("wire_bytes_total")
	}
	return ev
}
