package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/ckptstore"
	"repro/internal/core"
	"repro/internal/mkp"
)

// On-disk layout under Config.Dir:
//
//	jobs/<id>/spec.json      the submission, written before submit returns
//	jobs/<id>/result.json    terminal summary, written when the job ends
//	jobs/<id>/solution.txt   best solution (mkp.WriteSolution; mkpverify-able)
//	ckpt/state.<id>.<seq>    checkpoint generations, one shared base namespaced
//	                         by job ID through the store itself
//
// The invariant recovery relies on: a spec without a result is an unfinished
// job. Checkpoints are advisory — present, the job resumes mid-run; absent
// (killed before round 1), it restarts from scratch with the same seed, which
// lands on the identical trajectory.

// resultFile is the terminal summary persisted for done and failed jobs.
type resultFile struct {
	ID          string  `json:"id"`
	State       string  `json:"state"` // done | failed
	Canceled    bool    `json:"canceled,omitempty"`
	Error       string  `json:"error,omitempty"`
	Value       float64 `json:"value,omitempty"`
	Items       int     `json:"items,omitempty"`
	Rounds      int     `json:"rounds,omitempty"`
	TotalMoves  int64   `json:"total_moves,omitempty"`
	ResumedFrom int     `json:"resumed_from,omitempty"`
}

func (s *Server) jobDir(id string) string {
	return filepath.Join(s.cfg.Dir, "jobs", id)
}

// writeFileAtomic writes via temp file + rename so a crash mid-write never
// leaves a torn JSON document for recovery to trip over.
func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

func (s *Server) saveSpec(j *Job) error {
	if s.cfg.Dir == "" {
		return nil
	}
	dir := s.jobDir(j.spec.ID)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(&j.spec, "", "  ")
	if err != nil {
		return err
	}
	return writeFileAtomic(filepath.Join(dir, "spec.json"), data)
}

// persistResult writes the terminal summary and, for done jobs, the solution
// file. Called with the job already in its terminal state.
func (s *Server) persistResult(j *Job) error {
	if s.cfg.Dir == "" {
		return nil
	}
	j.mu.Lock()
	rf := resultFile{
		ID:       j.spec.ID,
		State:    j.state,
		Canceled: j.canceled,
		Error:    j.err,
	}
	if j.resumedFrom > 0 {
		rf.ResumedFrom = j.resumedFrom
	}
	res := j.result
	if res != nil {
		rf.Value = res.Best.Value
		rf.Items = res.Best.X.Count()
		rf.Rounds = res.Stats.Rounds
		rf.TotalMoves = res.Stats.TotalMoves
	}
	name := j.ins.Name
	j.mu.Unlock()

	dir := s.jobDir(j.spec.ID)
	if res != nil {
		var buf bytes.Buffer
		if err := mkp.WriteSolution(&buf, name, res.Best); err != nil {
			return err
		}
		if err := writeFileAtomic(filepath.Join(dir, "solution.txt"), buf.Bytes()); err != nil {
			return err
		}
	}
	data, err := json.MarshalIndent(&rf, "", "  ")
	if err != nil {
		return err
	}
	return writeFileAtomic(filepath.Join(dir, "result.json"), data)
}

// openStore opens the job's slice of the shared checkpoint base. Every job
// writes generations under the same base path; the store's job namespacing
// keeps them disjoint and refuses cross-job loads.
func (s *Server) openStore(id string) (*ckptstore.Store, error) {
	base := filepath.Join(s.cfg.Dir, "ckpt")
	if err := os.MkdirAll(base, 0o755); err != nil {
		return nil, err
	}
	return ckptstore.Open(filepath.Join(base, "state"),
		ckptstore.WithJob(id), ckptstore.WithKeep(3), ckptstore.WithMetrics(s.own))
}

// loadCheckpoint returns the job's newest restorable checkpoint, or nil when
// none exists (never written, or all generations corrupt — the job then
// restarts from its seed).
func (s *Server) loadCheckpoint(id string) (*core.Checkpoint, error) {
	store, err := s.openStore(id)
	if err != nil {
		return nil, err
	}
	payload, _, err := store.Load()
	if err != nil {
		if errors.Is(err, ckptstore.ErrNoCheckpoint) {
			return nil, nil
		}
		// A fully corrupt namespace is not fatal to the job: log-worthy, but
		// the deterministic seed makes a from-scratch rerun equivalent.
		return nil, nil
	}
	return core.LoadCheckpoint(bytes.NewReader(payload))
}

// recover scans the data directory and re-admits every job: finished ones
// become servable terminal records, unfinished ones are re-enqueued (in ID
// order, which for server-assigned IDs is submission order) with their
// newest checkpoint as the resume point.
func (s *Server) recover() error {
	if s.cfg.Dir == "" {
		return nil
	}
	root := filepath.Join(s.cfg.Dir, "jobs")
	entries, err := os.ReadDir(root)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if e.IsDir() && ckptstore.ValidJobID(e.Name()) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, id := range names {
		// Keep the ID counter ahead of every recovered server-assigned ID.
		var n int
		if _, err := fmt.Sscanf(id, "j%d", &n); err == nil && strings.HasPrefix(id, "j") && n >= s.seq {
			s.seq = n
		}
		if err := s.recoverJob(id); err != nil {
			return fmt.Errorf("serve: recover job %s: %w", id, err)
		}
	}
	return nil
}

func (s *Server) recoverJob(id string) error {
	dir := s.jobDir(id)
	specData, err := os.ReadFile(filepath.Join(dir, "spec.json"))
	if err != nil {
		// A directory without a spec is a submit that died before persisting;
		// nothing to recover.
		return nil
	}
	var spec Spec
	if err := json.Unmarshal(specData, &spec); err != nil {
		return err
	}
	spec.ID = id
	j, err := s.admit(spec)
	if err != nil {
		return err
	}

	if resData, err := os.ReadFile(filepath.Join(dir, "result.json")); err == nil {
		var rf resultFile
		if err := json.Unmarshal(resData, &rf); err != nil {
			return err
		}
		j.mu.Lock()
		j.state = rf.State
		j.err = rf.Error
		j.canceled = rf.Canceled
		j.round = rf.Rounds
		j.best = rf.Value
		j.resumedFrom = rf.ResumedFrom
		j.final = &rf
		j.mu.Unlock()
		j.hub.close()
		close(j.done)
		s.register(j)
		return nil
	}

	// Unfinished: resume from the newest checkpoint when one exists.
	if cp, err := s.loadCheckpoint(id); err == nil && cp != nil {
		j.mu.Lock()
		j.resume = cp
		j.resumedFrom = cp.Round
		j.round = cp.Round
		j.best = cp.Best.Value
		j.mu.Unlock()
	}
	s.register(j)
	s.enqueue(j)
	return nil
}
