package farm

import (
	"sync"
	"testing"
	"time"
)

func TestSendRecv(t *testing.T) {
	f := New(3)
	if err := f.Send(0, 2, "hello", 42, 8); err != nil {
		t.Fatal(err)
	}
	m := f.Recv(2)
	if m.From != 0 || m.To != 2 || m.Tag != "hello" || m.Payload.(int) != 42 || m.Size != 8 {
		t.Fatalf("got %+v", m)
	}
}

func TestSendBadEndpoints(t *testing.T) {
	f := New(2)
	for _, pair := range [][2]int{{-1, 0}, {0, -1}, {2, 0}, {0, 2}} {
		if err := f.Send(pair[0], pair[1], "x", nil, 0); err == nil {
			t.Fatalf("Send(%d,%d) accepted", pair[0], pair[1])
		}
	}
}

func TestNewPanicsOnZeroNodes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(0)
}

func TestTryRecv(t *testing.T) {
	f := New(2)
	if _, ok := f.TryRecv(1); ok {
		t.Fatal("TryRecv returned a message from an empty mailbox")
	}
	if err := f.Send(0, 1, "t", nil, 4); err != nil {
		t.Fatal(err)
	}
	m, ok := f.TryRecv(1)
	if !ok || m.Tag != "t" {
		t.Fatalf("TryRecv = %+v, %v", m, ok)
	}
}

func TestDrain(t *testing.T) {
	f := New(2)
	for i := 0; i < 5; i++ {
		if err := f.Send(0, 1, "d", i, 1); err != nil {
			t.Fatal(err)
		}
	}
	if n := f.Drain(1); n != 5 {
		t.Fatalf("Drain = %d, want 5", n)
	}
	if _, ok := f.TryRecv(1); ok {
		t.Fatal("mailbox not empty after Drain")
	}
}

func TestFIFOPerLink(t *testing.T) {
	f := New(2)
	for i := 0; i < 10; i++ {
		if err := f.Send(0, 1, "seq", i, 1); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		if got := f.Recv(1).Payload.(int); got != i {
			t.Fatalf("message %d arrived as %d", i, got)
		}
	}
}

func TestStatsAccounting(t *testing.T) {
	f := New(3)
	f.Send(0, 1, "a", nil, 10)
	f.Send(0, 1, "b", nil, 20)
	f.Send(2, 1, "c", nil, 5)
	f.Send(1, 0, "d", nil, 1)
	s := f.Stats()
	if s.Messages != 4 {
		t.Fatalf("Messages = %d, want 4", s.Messages)
	}
	if s.Bytes != 36 {
		t.Fatalf("Bytes = %d, want 36", s.Bytes)
	}
	if s.LinkMsgs[[2]int{0, 1}] != 2 {
		t.Fatalf("link 0->1 = %d, want 2", s.LinkMsgs[[2]int{0, 1}])
	}
	if s.BusiestIn != 1 {
		t.Fatalf("BusiestIn = %d, want 1", s.BusiestIn)
	}
}

func TestConcurrentSendersAllDelivered(t *testing.T) {
	f := New(5)
	const perSender = 200
	var wg sync.WaitGroup
	for from := 1; from < 5; from++ {
		wg.Add(1)
		go func(from int) {
			defer wg.Done()
			for i := 0; i < perSender; i++ {
				if err := f.Send(from, 0, "w", i, 4); err != nil {
					t.Error(err)
					return
				}
			}
		}(from)
	}
	received := 0
	for received < 4*perSender {
		f.Recv(0)
		received++
	}
	wg.Wait()
	if s := f.Stats(); s.Messages != 4*perSender {
		t.Fatalf("Messages = %d, want %d", s.Messages, 4*perSender)
	}
}

func TestLatencyInjection(t *testing.T) {
	f := New(2, WithLatency(5*time.Millisecond))
	start := time.Now()
	for i := 0; i < 4; i++ {
		if err := f.Send(0, 1, "slow", nil, 1); err != nil {
			t.Fatal(err)
		}
	}
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Fatalf("4 sends with 5ms latency took only %v", elapsed)
	}
}

func TestMailboxSizeOption(t *testing.T) {
	f := New(2, WithMailboxSize(1))
	if err := f.Send(0, 1, "a", nil, 1); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		f.Send(0, 1, "b", nil, 1) // blocks until the first is consumed
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("second send did not block on a full size-1 mailbox")
	case <-time.After(20 * time.Millisecond):
	}
	f.Recv(1)
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("send never unblocked")
	}
}

func TestWireSizes(t *testing.T) {
	if got := SizeOfSolution(100); got != 13+8 {
		t.Fatalf("SizeOfSolution(100) = %d, want 21", got)
	}
	if got := SizeOfSolution(8); got != 1+8 {
		t.Fatalf("SizeOfSolution(8) = %d, want 9", got)
	}
	if got := SizeOfStrategy(); got != 24 {
		t.Fatalf("SizeOfStrategy = %d, want 24", got)
	}
}
