// Package farm is the in-process stand-in for the paper's execution
// environment: a farm of 16 Alpha processors exchanging PVM messages over a
// 16×16 crossbar (§5). Nodes are goroutines, links are buffered channels, and
// every send is accounted (message and byte counters per directed link) so
// the experiment harness can report the communication volume the cooperative
// scheme generates. An optional injected per-message latency models a slower
// interconnect for ablations.
//
// The paper's master–slave scheme is synchronous and centralized; the
// decentralized asynchronous extension polls with TryRecv. Both are supported.
package farm

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Message is one typed datagram between nodes.
type Message struct {
	From, To int
	Tag      string
	Payload  any
	Size     int // accounted payload size in bytes
}

// Farm connects n nodes (0..n-1) with a full crossbar of buffered links.
type Farm struct {
	n       int
	latency time.Duration
	boxes   []chan Message

	msgs  atomic.Int64
	bytes atomic.Int64

	mu       sync.Mutex
	linkMsgs map[[2]int]int64
}

// Option configures a Farm.
type Option func(*Farm)

// WithLatency makes every Send sleep for d before delivery, modeling link
// latency. The default is zero (in-process speed).
func WithLatency(d time.Duration) Option {
	return func(f *Farm) { f.latency = d }
}

// WithMailboxSize sets each node's mailbox capacity (default 1024).
func WithMailboxSize(size int) Option {
	return func(f *Farm) {
		for i := range f.boxes {
			f.boxes[i] = make(chan Message, size)
		}
	}
}

// New creates a farm of n nodes. It panics if n < 1.
func New(n int, opts ...Option) *Farm {
	if n < 1 {
		panic(fmt.Sprintf("farm: need at least one node, got %d", n))
	}
	f := &Farm{
		n:        n,
		boxes:    make([]chan Message, n),
		linkMsgs: make(map[[2]int]int64),
	}
	for i := range f.boxes {
		f.boxes[i] = make(chan Message, 1024)
	}
	for _, o := range opts {
		o(f)
	}
	return f
}

// Nodes returns the number of nodes.
func (f *Farm) Nodes() int { return f.n }

// Send delivers a message from node `from` to node `to`. size is the
// accounted payload size in bytes (use SizeOfSolution and friends). Send
// blocks only when the destination mailbox is full.
func (f *Farm) Send(from, to int, tag string, payload any, size int) error {
	if from < 0 || from >= f.n || to < 0 || to >= f.n {
		return fmt.Errorf("farm: bad endpoints %d -> %d (n=%d)", from, to, f.n)
	}
	if f.latency > 0 {
		time.Sleep(f.latency)
	}
	f.msgs.Add(1)
	f.bytes.Add(int64(size))
	f.mu.Lock()
	f.linkMsgs[[2]int{from, to}]++
	f.mu.Unlock()
	f.boxes[to] <- Message{From: from, To: to, Tag: tag, Payload: payload, Size: size}
	return nil
}

// Recv blocks until a message for node arrives.
func (f *Farm) Recv(node int) Message {
	return <-f.boxes[node]
}

// TryRecv returns a pending message for node, or ok=false when the mailbox is
// empty. The asynchronous scheme polls with it between moves.
func (f *Farm) TryRecv(node int) (Message, bool) {
	select {
	case m := <-f.boxes[node]:
		return m, true
	default:
		return Message{}, false
	}
}

// Drain discards all pending messages for node and returns how many there
// were.
func (f *Farm) Drain(node int) int {
	count := 0
	for {
		select {
		case <-f.boxes[node]:
			count++
		default:
			return count
		}
	}
}

// Stats is a snapshot of the accounting counters.
type Stats struct {
	Messages  int64
	Bytes     int64
	LinkMsgs  map[[2]int]int64 // directed link -> message count
	BusiestIn int              // node receiving the most messages
}

// Stats returns a snapshot of the traffic counters.
func (f *Farm) Stats() Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	links := make(map[[2]int]int64, len(f.linkMsgs))
	in := make(map[int]int64)
	for k, v := range f.linkMsgs {
		links[k] = v
		in[k[1]] += v
	}
	busiest, most := 0, int64(-1)
	for node, c := range in {
		if c > most || (c == most && node < busiest) {
			busiest, most = node, c
		}
	}
	return Stats{
		Messages:  f.msgs.Load(),
		Bytes:     f.bytes.Load(),
		LinkMsgs:  links,
		BusiestIn: busiest,
	}
}

// SizeOfSolution returns the accounted wire size of an n-item 0-1 solution
// plus its objective value: packed bits plus one float64.
func SizeOfSolution(n int) int { return (n+7)/8 + 8 }

// SizeOfStrategy returns the accounted wire size of a strategy message: the
// paper's three integer parameters (§4.2).
func SizeOfStrategy() int { return 3 * 8 }
