package search

import (
	"repro/internal/metrics"
	"repro/internal/mkp"
	"repro/internal/rng"
	"repro/internal/tabu"
	"repro/internal/trace"
)

// assimBeta is the per-bit probability a differing bit is copied from the
// incumbent during assimilation. Dzalbs et al. move colonies a fixed fraction
// of the distance toward their imperialist; ~40% keeps the colony distinct
// enough to explore while the pull is strong enough that a good incumbent
// propagates within a few moves.
const assimBeta = 0.4

// Assim is the assimilation searcher: an ICA-style dynamic where the slave
// keeps a private "colony" solution and each move pulls it a random fraction
// of the way toward the cooperative incumbent (the start the master hands out
// each round — the ISP already substitutes the global best there), mutates a
// few bits, then repairs and fills back to feasibility. Where the repair
// searcher is memoryless, this one is all memory: its colony persists across
// rounds, so it explores the corridor between its own history and whatever
// the farm currently believes is best.
//
// Strategy reinterpretation: NbDrop is the mutation width (bits flipped per
// move) and NbLocal the non-improving moves tolerated before a revolution
// replaces the colony with a fresh randomized-greedy build; LtLength is
// unused.
type Assim struct {
	ins    *mkp.Instance
	r      *rng.Rand
	st     *mkp.State
	colony mkp.Solution // persists across rounds; zero until the first Run
	moves  int64        // lifetime move counter, the heartbeat watermark
}

// NewAssim returns an assimilation searcher for ins seeded with seed.
func NewAssim(ins *mkp.Instance, seed uint64) *Assim {
	return &Assim{ins: ins, r: rng.New(seed), st: mkp.NewState(ins)}
}

// WarmStart restores the lifetime move counter and re-seeds the colony from
// the shared pool — the respawned slave resumes from the farm's collective
// memory instead of a cold random build.
func (s *Assim) WarmStart(pool []mkp.Solution, moves int64) {
	s.moves = moves
	if len(pool) > 0 {
		s.colony = pool[0].Clone()
	}
}

// Run executes one round: budget assimilation moves toward start.
func (s *Assim) Run(start mkp.Solution, p tabu.Params, budget int64) (*tabu.Result, error) {
	if err := checkRun(s.ins, start, p, budget); err != nil {
		return nil, err
	}
	if p.Heartbeat != nil {
		p.Heartbeat(s.moves)
	}
	mMoves, mImp := s.metricHandles(p.Metrics)

	// Normalize the incumbent through the evaluator: repair guards against a
	// hostile or stale start, fill tops up slack the sender left unused.
	s.st.Load(start.X)
	mkp.Repair(s.st)
	mkp.FillGreedy(s.st)
	incumbent := s.st.Snapshot()
	startValue := incumbent.Value

	if s.colony.X == nil {
		s.colony = incumbent.Clone()
	}
	best := s.colony
	if incumbent.Value > best.Value {
		best = incumbent
	}
	best = best.Clone()
	pool := tabu.NewPool(p.BBest)
	pool.Offer(best)

	stall := 0
	var executed int64
	for executed < budget {
		// Assimilate: copy each differing bit from the incumbent with
		// probability assimBeta, then mutate NbDrop random positions.
		cand := s.colony.X.Clone()
		for j := 0; j < s.ins.N; j++ {
			if cand.Get(j) != incumbent.X.Get(j) && s.r.Bool(assimBeta) {
				cand.SetTo(j, incumbent.X.Get(j))
			}
		}
		for i := 0; i < p.Strategy.NbDrop; i++ {
			cand.Flip(s.r.Intn(s.ins.N))
		}
		s.st.Load(cand)
		mkp.Repair(s.st)
		mkp.FillGreedy(s.st)
		executed++
		s.moves++
		mMoves.Inc()
		if p.Heartbeat != nil && executed&0xff == 0 {
			p.Heartbeat(s.moves)
		}
		if s.st.Value > s.colony.Value {
			s.colony = s.st.Snapshot()
			stall = 0
		} else {
			stall++
		}
		if s.st.Value > best.Value {
			best = s.st.Snapshot()
			mImp.Inc()
			if p.Tracer != nil {
				p.Tracer.Record(trace.Event{
					Kind: trace.KindImprovement, Actor: p.TraceID,
					Round: -1, Move: s.moves, Value: best.Value,
				})
			}
		}
		pool.Offer(mkp.Solution{X: s.st.X, Value: s.st.Value})
		if stall > p.Strategy.NbLocal {
			// Revolution: the colony has orbited the incumbent long enough;
			// replace it with a fresh randomized-greedy build.
			s.colony = mkp.RandomizedGreedy(s.ins, s.r, 4)
			stall = 0
			if p.Tracer != nil {
				p.Tracer.Record(trace.Event{
					Kind: trace.KindDiversify, Actor: p.TraceID,
					Round: -1, Move: s.moves, Value: s.colony.Value,
				})
			}
		}
	}

	return &tabu.Result{
		Best:     best.Clone(),
		Pool:     pool.Solutions(),
		Moves:    executed,
		Improved: best.Value > startValue,
	}, nil
}

func (s *Assim) metricHandles(r *metrics.Registry) (*metrics.Counter, *metrics.Counter) {
	if r == nil {
		return nil, nil
	}
	return r.Counter("search_moves_total", "algo", tabu.AlgoAssim.String()),
		r.Counter("search_improvements_total", "algo", tabu.AlgoAssim.String())
}
