// Package search defines the algorithm-agnostic Searcher seam the parallel
// farm drives: one round of work given a start, a strategy and a move budget,
// plus warm-start restoration after a respawn. The paper's homogeneous farm
// runs the tabu kernel on every slave; this seam lets slaves run *different*
// algorithms over the same cooperative pool — the hyper-heuristic portfolio —
// while the master keeps dispatching the same (start, strategy, budget)
// triples and collecting the same Result shape.
//
// Three members ship today, selected by tabu.AlgoID:
//
//	tabu    the paper's kernel (internal/tabu), the portfolio's anchor
//	repair  randomized drop-and-repair (Martins 2024): drop the worst packed
//	        items by burden ratio, refill with a GRASP-style randomized greedy
//	assim   ICA-style assimilation (Dzalbs et al.): perturb a private colony
//	        solution toward the cooperative incumbent, repair, fill
//
// All members honor the kernel's determinism contract: given the same seed
// and inputs the trajectory is bitwise reproducible, heartbeats publish the
// lifetime move watermark at round start and every 256 moves, and Tracer /
// Metrics hooks never draw randomness.
package search

import (
	"fmt"

	"repro/internal/mkp"
	"repro/internal/rng"
	"repro/internal/tabu"
)

// Searcher is one round-driven search algorithm. *tabu.Searcher satisfies it;
// the portfolio members in this package provide the other implementations.
//
// Run executes one rendezvous round: at most budget compound moves from
// start under p, returning the round's best, the B-best pool, the executed
// move count and whether the start was improved. WarmStart restores the
// lifetime state a respawned slave needs (the shared pool snapshot and the
// move-counter epoch) without replaying the rounds that produced it.
type Searcher interface {
	Run(start mkp.Solution, p tabu.Params, budget int64) (*tabu.Result, error)
	WarmStart(pool []mkp.Solution, moves int64)
}

// New builds the Searcher for one portfolio algorithm. The tabu kernel is
// seeded with exactly the given seed — a slave whose portfolio is all-tabu
// replays the homogeneous farm bit for bit — and the other members derive
// their streams through SeedFor.
func New(algo tabu.AlgoID, ins *mkp.Instance, seed uint64) (Searcher, error) {
	switch algo {
	case tabu.AlgoTabu:
		return tabu.NewSearcher(ins, seed)
	case tabu.AlgoRepair:
		return NewRepair(ins, SeedFor(seed, algo)), nil
	case tabu.AlgoAssim:
		return NewAssim(ins, SeedFor(seed, algo)), nil
	default:
		return nil, fmt.Errorf("search: unknown algorithm id %d", int(algo))
	}
}

// SeedFor derives the RNG seed one slave uses for one portfolio algorithm
// from the slave's node seed. AlgoTabu maps to the node seed itself — the
// inert contract: an all-tabu portfolio consumes exactly the streams the
// homogeneous farm consumed — and every other algorithm gets an independent
// stream mixed through the generator so lazily building a second searcher
// never perturbs the first one's trajectory. The rule is a pure function, so
// masters, elastic joiners and warm respawns all agree on it.
func SeedFor(seed uint64, algo tabu.AlgoID) uint64 {
	if algo == tabu.AlgoTabu {
		return seed
	}
	return rng.New(seed ^ (uint64(algo) << 48) ^ 0xC2B2AE3D27D4EB4F).Uint64()
}

// checkRun validates the shared Run preconditions for the portfolio members.
func checkRun(ins *mkp.Instance, start mkp.Solution, p tabu.Params, budget int64) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if budget < 1 {
		return fmt.Errorf("search: budget %d < 1", budget)
	}
	if start.X == nil || start.X.Len() != ins.N {
		return fmt.Errorf("search: start solution does not match instance size %d", ins.N)
	}
	return nil
}
