package search

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/mkp"
	"repro/internal/rng"
	"repro/internal/tabu"
)

func testInstance(t *testing.T) *mkp.Instance {
	t.Helper()
	return gen.GK("search-5x60", 60, 5, 0.25, 7)
}

func testParams(n int) tabu.Params {
	p := tabu.DefaultParams(n)
	p.Strategy = tabu.Strategy{LtLength: 7, NbDrop: 2, NbLocal: 20}
	return p
}

// Every portfolio member must satisfy the seam and run a legal round: a
// feasible best no worse than the greedy start floor, the full budget
// executed, and a non-empty pool bounded by BBest.
func TestEveryAlgoRunsALegalRound(t *testing.T) {
	ins := testInstance(t)
	start := mkp.Greedy(ins)
	for a := tabu.AlgoID(0); int(a) < tabu.NumAlgos; a++ {
		s, err := New(a, ins, 42)
		if err != nil {
			t.Fatalf("%v: %v", a, err)
		}
		p := testParams(ins.N)
		p.Strategy.Algo = a
		res, err := s.Run(start.Clone(), p, 500)
		if err != nil {
			t.Fatalf("%v: %v", a, err)
		}
		if res.Moves != 500 {
			t.Fatalf("%v: executed %d moves, want 500", a, res.Moves)
		}
		if !mkp.IsFeasibleAssignment(ins, res.Best.X) {
			t.Fatalf("%v: infeasible best", a)
		}
		if got := mkp.ValueOf(ins, res.Best.X); got != res.Best.Value {
			t.Fatalf("%v: reported value %v but bits evaluate to %v", a, res.Best.Value, got)
		}
		if res.Best.Value < start.Value {
			t.Fatalf("%v: best %v below the start %v it was given", a, res.Best.Value, start.Value)
		}
		if len(res.Pool) == 0 || len(res.Pool) > p.BBest {
			t.Fatalf("%v: pool size %d outside (0,%d]", a, len(res.Pool), p.BBest)
		}
	}
}

// Same seed, same inputs, same trajectory — the determinism contract every
// member inherits from the kernel.
func TestPortfolioMembersAreDeterministic(t *testing.T) {
	ins := testInstance(t)
	start := mkp.Greedy(ins)
	for a := tabu.AlgoID(0); int(a) < tabu.NumAlgos; a++ {
		p := testParams(ins.N)
		p.Strategy.Algo = a
		run := func() *tabu.Result {
			s, err := New(a, ins, 99)
			if err != nil {
				t.Fatal(err)
			}
			res, err := s.Run(start.Clone(), p, 600)
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		r1, r2 := run(), run()
		if r1.Best.Value != r2.Best.Value || !r1.Best.X.Equal(r2.Best.X) {
			t.Fatalf("%v: same seed diverged: %v vs %v", a, r1.Best.Value, r2.Best.Value)
		}
		if r1.Moves != r2.Moves || r1.Improved != r2.Improved {
			t.Fatalf("%v: bookkeeping diverged", a)
		}
		if len(r1.Pool) != len(r2.Pool) {
			t.Fatalf("%v: pool size diverged", a)
		}
		for i := range r1.Pool {
			if !r1.Pool[i].X.Equal(r2.Pool[i].X) {
				t.Fatalf("%v: pool entry %d diverged", a, i)
			}
		}
	}
}

// The seed rule: tabu maps to the node seed itself (the inert contract) and
// the other members get distinct streams, stable across calls.
func TestSeedForIsPureAndInertForTabu(t *testing.T) {
	if got := SeedFor(12345, tabu.AlgoTabu); got != 12345 {
		t.Fatalf("tabu seed changed: %d", got)
	}
	a := SeedFor(12345, tabu.AlgoRepair)
	b := SeedFor(12345, tabu.AlgoAssim)
	if a == 12345 || b == 12345 || a == b {
		t.Fatalf("derived seeds collide: %d %d", a, b)
	}
	if a != SeedFor(12345, tabu.AlgoRepair) {
		t.Fatal("SeedFor is not a pure function")
	}
}

// New rejects ids outside the registered portfolio.
func TestNewRejectsUnknownAlgo(t *testing.T) {
	ins := testInstance(t)
	if _, err := New(tabu.AlgoID(tabu.NumAlgos), ins, 1); err == nil {
		t.Fatal("out-of-range algorithm id accepted")
	}
	if _, err := New(tabu.AlgoID(-1), ins, 1); err == nil {
		t.Fatal("negative algorithm id accepted")
	}
}

// Run preconditions: bad budget, mismatched start and invalid params are
// rejected by every member, never executed.
func TestRunRejectsBadInputs(t *testing.T) {
	ins := testInstance(t)
	start := mkp.Greedy(ins)
	for a := tabu.AlgoID(0); int(a) < tabu.NumAlgos; a++ {
		s, err := New(a, ins, 5)
		if err != nil {
			t.Fatal(err)
		}
		p := testParams(ins.N)
		if _, err := s.Run(start.Clone(), p, 0); err == nil {
			t.Fatalf("%v: zero budget accepted", a)
		}
		short := mkp.RandomFeasible(gen.GK("short", 10, 3, 0.25, 1), rng.New(1))
		if _, err := s.Run(short, p, 100); err == nil {
			t.Fatalf("%v: mismatched start accepted", a)
		}
		bad := p
		bad.Strategy.NbDrop = 0
		if _, err := s.Run(start.Clone(), bad, 100); err == nil {
			t.Fatalf("%v: invalid strategy accepted", a)
		}
	}
}

// A hostile (infeasible) start must be repaired, not trusted: the round still
// returns a feasible best.
func TestRepairAndAssimSurviveInfeasibleStart(t *testing.T) {
	ins := testInstance(t)
	full := mkp.Solution{X: mkp.Greedy(ins).X.Clone()}
	for j := 0; j < ins.N; j++ {
		full.X.Set(j)
	}
	full.Value = mkp.ValueOf(ins, full.X)
	for _, a := range []tabu.AlgoID{tabu.AlgoRepair, tabu.AlgoAssim} {
		s, err := New(a, ins, 3)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(full.Clone(), testParams(ins.N), 200)
		if err != nil {
			t.Fatalf("%v: %v", a, err)
		}
		if !mkp.IsFeasibleAssignment(ins, res.Best.X) {
			t.Fatalf("%v: infeasible best from infeasible start", a)
		}
	}
}

// WarmStart restores the lifetime heartbeat watermark: the first heartbeat
// after a respawn must publish the restored epoch, not zero.
func TestWarmStartRestoresWatermark(t *testing.T) {
	ins := testInstance(t)
	start := mkp.Greedy(ins)
	pool := []mkp.Solution{start.Clone()}
	for a := tabu.AlgoID(0); int(a) < tabu.NumAlgos; a++ {
		s, err := New(a, ins, 8)
		if err != nil {
			t.Fatal(err)
		}
		s.WarmStart(pool, 7777)
		var first int64 = -1
		p := testParams(ins.N)
		p.Heartbeat = func(moves int64) {
			if first < 0 {
				first = moves
			}
		}
		if _, err := s.Run(start.Clone(), p, 64); err != nil {
			t.Fatalf("%v: %v", a, err)
		}
		if first != 7777 {
			t.Fatalf("%v: first heartbeat %d, want restored watermark 7777", a, first)
		}
	}
}

// The assimilation searcher's colony persists across rounds: handing it the
// same incumbent twice must not reset its trajectory (the second round starts
// from the colony the first round left behind).
func TestAssimColonyPersistsAcrossRounds(t *testing.T) {
	ins := testInstance(t)
	start := mkp.Greedy(ins)
	p := testParams(ins.N)
	p.Strategy.Algo = tabu.AlgoAssim

	s := NewAssim(ins, 11)
	r1, err := s.Run(start.Clone(), p, 300)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.Run(start.Clone(), p, 300)
	if err != nil {
		t.Fatal(err)
	}
	// A fresh searcher re-running round one reproduces r1 exactly; the
	// persistent one carries its colony and lifetime counters forward.
	fresh := NewAssim(ins, 11)
	f1, err := fresh.Run(start.Clone(), p, 300)
	if err != nil {
		t.Fatal(err)
	}
	if f1.Best.Value != r1.Best.Value || !f1.Best.X.Equal(r1.Best.X) {
		t.Fatalf("fresh searcher did not reproduce round one: %v vs %v", f1.Best.Value, r1.Best.Value)
	}
	if s.colony.X == nil {
		t.Fatal("colony not retained after round one")
	}
	if s.moves != 600 || fresh.moves != 300 {
		t.Fatalf("lifetime counters %d/%d, want 600/300", s.moves, fresh.moves)
	}
	if r2.Moves != 300 {
		t.Fatalf("round two executed %d moves, want 300", r2.Moves)
	}
}
