package search

import (
	"sort"

	"repro/internal/metrics"
	"repro/internal/mkp"
	"repro/internal/rng"
	"repro/internal/tabu"
	"repro/internal/trace"
)

// Repair is the randomized drop-and-repair searcher: each move drops the
// NbDrop most burdensome packed items (their burden ratio Σ_i a_ij/c_i says
// they buy the least value per unit of consumed capacity) and refills the
// knapsack with a GRASP-style randomized greedy over a restricted candidate
// list. Martins 2024 shows this repair dynamic is competitive on large MKP
// instances precisely because each move is cheap and strongly randomized —
// the searcher trades the kernel's memory structures for raw restart volume.
//
// Strategy reinterpretation: NbDrop is the dismantling depth per move and
// NbLocal the non-improving moves tolerated before restarting from a fresh
// randomized-greedy build; LtLength is unused (there is no tabu list).
type Repair struct {
	ins   *mkp.Instance
	r     *rng.Rand
	st    *mkp.State
	rank  []int // items by decreasing pseudo-utility, cached once
	moves int64 // lifetime move counter, the heartbeat watermark

	packed []int // scratch: packed indices of the current state
	cands  []int // scratch: restricted candidate list
}

// NewRepair returns a repair searcher for ins seeded with seed.
func NewRepair(ins *mkp.Instance, seed uint64) *Repair {
	return &Repair{
		ins:  ins,
		r:    rng.New(seed),
		st:   mkp.NewState(ins),
		rank: mkp.RankByUtility(ins),
	}
}

// WarmStart restores the lifetime move counter after a respawn. The repair
// searcher keeps no other long-term state: its pool is rebuilt per round and
// its randomness is memoryless by design.
func (s *Repair) WarmStart(pool []mkp.Solution, moves int64) {
	s.moves = moves
}

// Run executes one round: budget drop-and-repair moves from start.
func (s *Repair) Run(start mkp.Solution, p tabu.Params, budget int64) (*tabu.Result, error) {
	if err := checkRun(s.ins, start, p, budget); err != nil {
		return nil, err
	}
	if p.Heartbeat != nil {
		p.Heartbeat(s.moves)
	}
	mMoves, mImp := s.metricHandles(p.Metrics)

	s.st.Load(start.X)
	mkp.Repair(s.st)
	mkp.FillGreedy(s.st)
	startValue := s.st.Value

	best := s.st.Snapshot()
	pool := tabu.NewPool(p.BBest)
	pool.Offer(best)

	stall := 0
	var executed int64
	for executed < budget {
		s.dropWorst(p.Strategy.NbDrop, p.DropNoise)
		s.randomFill(p)
		executed++
		s.moves++
		mMoves.Inc()
		if p.Heartbeat != nil && executed&0xff == 0 {
			p.Heartbeat(s.moves)
		}
		if s.st.Value > best.Value {
			best = s.st.Snapshot()
			stall = 0
			mImp.Inc()
			if p.Tracer != nil {
				p.Tracer.Record(trace.Event{
					Kind: trace.KindImprovement, Actor: p.TraceID,
					Round: -1, Move: s.moves, Value: best.Value,
				})
			}
		} else {
			stall++
		}
		pool.Offer(mkp.Solution{X: s.st.X, Value: s.st.Value})
		if stall > p.Strategy.NbLocal {
			// Restart: a fresh randomized-greedy build replaces the orbit
			// the drops keep reassembling — the repair analogue of the
			// kernel's diversification.
			fresh := mkp.RandomizedGreedy(s.ins, s.r, s.rcl(p))
			s.st.Load(fresh.X)
			stall = 0
			if p.Tracer != nil {
				p.Tracer.Record(trace.Event{
					Kind: trace.KindDiversify, Actor: p.TraceID,
					Round: -1, Move: s.moves, Value: fresh.Value,
				})
			}
		}
	}

	return &tabu.Result{
		Best:     best.Clone(),
		Pool:     pool.Solutions(),
		Moves:    executed,
		Improved: best.Value > startValue,
	}, nil
}

// rcl is the restricted-candidate-list width: CandWidth when the strategy
// bounds the add phase, else a couple wider than the dismantling depth so the
// refill can land somewhere new.
func (s *Repair) rcl(p tabu.Params) int {
	if p.CandWidth > 0 {
		return p.CandWidth
	}
	w := p.Strategy.NbDrop + 2
	if w < 3 {
		w = 3
	}
	return w
}

// dropWorst drops up to k packed items in decreasing burden ratio. DropNoise
// is the probability a step takes the second-worst item instead of the worst,
// the same decorrelation role it plays in the kernel's Drop step.
func (s *Repair) dropWorst(k int, noise float64) {
	s.packed = s.st.X.Indices(s.packed[:0])
	if len(s.packed) == 0 {
		return
	}
	sort.SliceStable(s.packed, func(a, b int) bool {
		return s.ins.BurdenRatio(s.packed[a]) > s.ins.BurdenRatio(s.packed[b])
	})
	for i := 0; i < k && len(s.packed) > 0; i++ {
		pick := 0
		if len(s.packed) > 1 && noise > 0 && s.r.Bool(noise) {
			pick = 1
		}
		s.st.Drop(s.packed[pick])
		s.packed = append(s.packed[:pick], s.packed[pick+1:]...)
	}
}

// randomFill packs items until nothing fits, each step choosing uniformly
// among the rcl best-utility fitting items (AddNoise skips a candidate with
// the kernel's Add-phase probability).
func (s *Repair) randomFill(p tabu.Params) {
	rcl := s.rcl(p)
	for {
		s.cands = s.cands[:0]
		maxSlack := s.st.MaxSlack()
		for _, j := range s.rank {
			if s.st.X.Get(j) || s.ins.MinWeight[j] > maxSlack {
				continue
			}
			if s.st.Fits(j) {
				if p.AddNoise > 0 && s.r.Bool(p.AddNoise) {
					continue
				}
				s.cands = append(s.cands, j)
				if len(s.cands) == rcl {
					break
				}
			}
		}
		if len(s.cands) == 0 {
			return
		}
		s.st.Add(s.cands[s.r.Intn(len(s.cands))])
	}
}

// metricHandles resolves the per-algorithm telemetry counters. Like the
// kernel's handles they are nil-safe: a nil registry costs one predictable
// branch per record and never perturbs the trajectory.
func (s *Repair) metricHandles(r *metrics.Registry) (*metrics.Counter, *metrics.Counter) {
	if r == nil {
		return nil, nil
	}
	return r.Counter("search_moves_total", "algo", tabu.AlgoRepair.String()),
		r.Counter("search_improvements_total", "algo", tabu.AlgoRepair.String())
}
