package pts_test

import (
	"testing"

	pts "repro"
)

func TestFacadeLowLevel(t *testing.T) {
	ins := pts.GenerateGK("ll", 30, 4, 0.3, 10)
	res, err := pts.SolveLowLevel(ins, pts.LowLevelOptions{Workers: 2, Moves: 300})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Value < pts.Greedy(ins).Value {
		t.Fatalf("low-level %v below greedy", res.Best.Value)
	}
}

func TestFacadeCETS(t *testing.T) {
	ins := pts.GenerateGK("cets", 40, 4, 0.25, 5)
	res, err := pts.SolveCETS(ins, pts.CETSOptions{Seed: 1, Budget: 3000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Value < pts.Greedy(ins).Value {
		t.Fatalf("CETS %v below greedy", res.Best.Value)
	}
	ub, err := pts.LPBound(ins)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Value > ub {
		t.Fatalf("CETS %v above LP bound %v", res.Best.Value, ub)
	}
}

func TestFacadeDecomposed(t *testing.T) {
	ins := pts.GenerateGK("dec", 40, 4, 0.25, 8)
	res, err := pts.SolveDecomposed(ins, pts.DecomposeOptions{Parts: 3, Seed: 1, MovesPerPart: 300, PolishMoves: 300})
	if err != nil {
		t.Fatal(err)
	}
	ub, err := pts.LPBound(ins)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Value <= 0 || res.Best.Value > ub {
		t.Fatalf("decomposed value %v outside (0, %v]", res.Best.Value, ub)
	}
}
