// Benchmarks regenerating the paper's evaluation, one testing.B target per
// table (and per Table 1 row group / Table 2 column), plus the DESIGN.md
// ablations. Each benchmark iteration is one scaled-down but structurally
// complete run of the corresponding experiment; custom metrics report
// solution quality next to the timing so `go test -bench=.` reproduces both
// axes of the paper's tables. cmd/mkpbench runs the same experiments at
// paper scale.
package pts_test

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/mkp"
	"repro/internal/tabu"
)

// ---- Table 1: one benchmark per size group ------------------------------

// table1Group runs CTS2 on the first problem of a GK size group and reports
// the deviation from the LP bound as a custom metric.
func table1Group(b *testing.B, label string) {
	b.Helper()
	suite := gen.GKSuite(42)
	groups := gen.GKGroups()
	idx := 0
	for _, g := range groups {
		if g.Label == label {
			break
		}
		idx += g.Count
	}
	ins := suite[idx]
	ref, err := bench.ComputeReference(ins, 0)
	if err != nil {
		b.Fatal(err)
	}
	var dev float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.Solve(ins, core.CTS2, core.Options{
			P: 8, Seed: uint64(i + 1), Rounds: 5,
			RoundMoves: int64(200 + 10*ins.N),
		})
		if err != nil {
			b.Fatal(err)
		}
		dev = ref.Deviation(res.Best.Value)
	}
	b.ReportMetric(dev, "dev%")
}

func BenchmarkTable1_GK_3x10(b *testing.B)   { table1Group(b, "1to4") }
func BenchmarkTable1_GK_5x25(b *testing.B)   { table1Group(b, "5to8") }
func BenchmarkTable1_GK_10x50(b *testing.B)  { table1Group(b, "9to14") }
func BenchmarkTable1_GK_15x100(b *testing.B) { table1Group(b, "15to17") }
func BenchmarkTable1_GK_25x100(b *testing.B) { table1Group(b, "18to22") }
func BenchmarkTable1_GK_10x250(b *testing.B) { table1Group(b, "23") }
func BenchmarkTable1_GK_25x250(b *testing.B) { table1Group(b, "24") }
func BenchmarkTable1_GK_25x500(b *testing.B) { table1Group(b, "25") }

// ---- Table 2: one benchmark per algorithm column ------------------------

// table2Column runs one Table 2 column (algorithm) on MK1 and reports the
// best value found as a custom metric.
func table2Column(b *testing.B, algo core.Algorithm) {
	b.Helper()
	ins := gen.MKSuite(42)[0] // MK1, 10*100
	var value float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.Solve(ins, algo, core.Options{
			P: 8, Seed: uint64(i + 1), Rounds: 5, RoundMoves: 600,
		})
		if err != nil {
			b.Fatal(err)
		}
		value = res.Best.Value
	}
	b.ReportMetric(value, "value")
}

func BenchmarkTable2_SEQ(b *testing.B)  { table2Column(b, core.SEQ) }
func BenchmarkTable2_ITS(b *testing.B)  { table2Column(b, core.ITS) }
func BenchmarkTable2_CTS1(b *testing.B) { table2Column(b, core.CTS1) }
func BenchmarkTable2_CTS2(b *testing.B) { table2Column(b, core.CTS2) }

// ---- §5 FP claim ---------------------------------------------------------

// BenchmarkFPSuite runs CTS2 with early stop at the certified optimum over
// the first problems of the FP suite and reports the hit rate.
func BenchmarkFPSuite(b *testing.B) {
	var hits, proven int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sum, err := bench.FPReport(bench.FPConfig{
			Seed: 42, P: 4, Rounds: 10, RoundMoves: 400,
			ExactNodeLimit: 2_000_000, Limit: 6,
		})
		if err != nil {
			b.Fatal(err)
		}
		hits, proven = sum.Hits, sum.Proven
	}
	b.ReportMetric(float64(hits), "hits")
	b.ReportMetric(float64(proven), "proven")
}

// ---- Ablations -----------------------------------------------------------

func quickAblation() bench.AblationConfig {
	return bench.AblationConfig{Seed: 42, P: 4, Rounds: 3, RoundMoves: 300, Seeds: 1}
}

// BenchmarkAblationAlpha sweeps the ISP threshold (experiment A).
func BenchmarkAblationAlpha(b *testing.B) {
	var rows []bench.AlphaRow
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.AblationAlpha(quickAblation())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[len(rows)-1].MeanValue, "value@a=0.99")
}

// BenchmarkAblationTuning compares CTS1 vs CTS2 (experiment B).
func BenchmarkAblationTuning(b *testing.B) {
	var rows []bench.TuningRow
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.AblationTuning(quickAblation())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].CTS2-rows[0].CTS1, "cts2-cts1")
}

// BenchmarkAblationScaling sweeps the slave count (experiment C).
func BenchmarkAblationScaling(b *testing.B) {
	var rows []bench.ScalingRow
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.AblationScaling(quickAblation())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[len(rows)-1].MeanValue-rows[0].MeanValue, "p16-p1")
}

// BenchmarkAblationStrategy sweeps tenure x NbDrop (experiment D).
func BenchmarkAblationStrategy(b *testing.B) {
	var rows []bench.StrategyRow
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.AblationStrategy(quickAblation())
		if err != nil {
			b.Fatal(err)
		}
	}
	best := 0.0
	for _, r := range rows {
		if r.MeanValue > best {
			best = r.MeanValue
		}
	}
	b.ReportMetric(best, "bestvalue")
}

// BenchmarkAblationPolicies compares the tabu-list management schemes
// (experiment E: static recency vs reactive vs REM).
func BenchmarkAblationPolicies(b *testing.B) {
	var rows []bench.PolicyRow
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.AblationPolicies(quickAblation())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].MeanValue, "static")
	b.ReportMetric(rows[2].MeanValue, "rem")
}

// BenchmarkAblationGrain compares coarse-grained vs low-level parallelism
// (experiment F).
func BenchmarkAblationGrain(b *testing.B) {
	var rows []bench.GrainRow
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.AblationGrain(quickAblation())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rows[1].Barriers), "lowlevel-barriers")
}

// BenchmarkAblationSpeedup measures time-to-SEQ-quality vs P (experiment G).
func BenchmarkAblationSpeedup(b *testing.B) {
	var rows []bench.SpeedupRow
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.AblationSpeedup(quickAblation())
		if err != nil {
			b.Fatal(err)
		}
	}
	if rows[4].Hits > 0 {
		b.ReportMetric(rows[4].Rounds.Mean, "rounds@p16")
	}
}

// BenchmarkAblationKernel compares the paper kernel against critical-event
// TS (experiment H).
func BenchmarkAblationKernel(b *testing.B) {
	var rows []bench.KernelRow
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.AblationKernel(quickAblation())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].Value.Mean-rows[1].Value.Mean, "paper-cets")
}

// BenchmarkAblationReduction measures LP variable fixing by family
// (experiment I).
func BenchmarkAblationReduction(b *testing.B) {
	var rows []bench.ReduceRow
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.AblationReduction(quickAblation())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].Rate.Mean, "uncorr-rate")
	b.ReportMetric(rows[3].Rate.Mean, "fp-rate")
}

// ---- micro benchmarks of the hot kernels at paper scale ------------------

// BenchmarkKernelMove25x500 measures one compound Drop/Add move on the
// largest Table 1 size.
func BenchmarkKernelMove25x500(b *testing.B) {
	ins := gen.GK("kernel", 500, 25, 0.25, 1)
	s, err := tabu.NewSearcher(ins, 1)
	if err != nil {
		b.Fatal(err)
	}
	start := mkp.Greedy(ins)
	b.ReportAllocs()
	b.ResetTimer()
	if _, err := s.Run(start, tabu.DefaultParams(ins.N), int64(b.N)); err != nil {
		b.Fatal(err)
	}
}
