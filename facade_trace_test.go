package pts_test

import (
	"strings"
	"testing"

	pts "repro"
)

func TestFacadeTrace(t *testing.T) {
	ins := pts.GenerateGK("tr", 30, 4, 0.3, 9)
	log := pts.NewTraceLog(1000)
	_, err := pts.Solve(ins, pts.CTS2, pts.Options{P: 2, Seed: 3, Rounds: 3, RoundMoves: 150, Tracer: log})
	if err != nil {
		t.Fatal(err)
	}
	if log.CountKind(pts.TraceRoundStart) != 3 {
		t.Fatalf("round events = %d, want 3", log.CountKind(pts.TraceRoundStart))
	}
	var sb strings.Builder
	w := pts.NewTraceWriter(&sb)
	for _, e := range log.Events() {
		w.Record(e)
	}
	if !strings.Contains(sb.String(), "round") {
		t.Fatal("writer rendering broken")
	}
}
