package pts_test

import (
	"fmt"

	pts "repro"
)

// ExampleSolve runs the full cooperative parallel tabu search (CTS2) on a
// generated instance and checks the result against the LP relaxation bound.
func ExampleSolve() {
	ins := pts.GenerateGK("example", 60, 5, 0.25, 1)
	res, err := pts.Solve(ins, pts.CTS2, pts.Options{P: 4, Seed: 7, Rounds: 5, RoundMoves: 500})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	ub, _ := pts.LPBound(ins)
	fmt.Println("found a solution:", res.Best.Value > 0)
	fmt.Println("within LP bound:", res.Best.Value <= ub)
	fmt.Println("at least as good as greedy:", res.Best.Value >= pts.Greedy(ins).Value)
	// Output:
	// found a solution: true
	// within LP bound: true
	// at least as good as greedy: true
}

// ExampleSolveExact certifies an optimum with branch and bound.
func ExampleSolveExact() {
	ins := pts.GenerateFP("small", 15, 3, 2)
	res, err := pts.SolveExact(ins, pts.ExactOptions{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("proven optimal:", res.Optimal)
	fmt.Println("bounded by root LP:", res.Solution.Value <= res.RootLP)
	// Output:
	// proven optimal: true
	// bounded by root LP: true
}

// ExampleSearchSequential runs one sequential tabu-search kernel — what each
// slave executes inside the parallel organizations.
func ExampleSearchSequential() {
	ins := pts.GenerateGK("kernel", 40, 4, 0.25, 3)
	res, err := pts.SearchSequential(ins, pts.DefaultParams(ins.N), 1000, 5)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("moves executed:", res.Moves)
	fmt.Println("pool is non-empty:", len(res.Pool) > 0)
	// Output:
	// moves executed: 1000
	// pool is non-empty: true
}
