#!/bin/sh
# CI harness for the durable checkpoint store and the resume path: start a
# checkpointed solve, kill -9 it mid-run, resume from the newest generation
# and require the resumed run to (a) report the pre-crash best on its resume
# line, (b) end at least as good as that best, and (c) write a solution that
# mkpverify accepts. Then truncate the newest generation and require the next
# resume to fall back to an older one, quarantining the torn file as .corrupt.
# Usage: scripts/crash_resume.sh [mkpsolve] [mkpgen] [mkpverify]
set -eu

SOLVE=${1:-./mkpsolve}
GEN=${2:-./mkpgen}
VERIFY=${3:-./mkpverify}

DIR=$(mktemp -d)
PID=""
cleanup() {
    [ -n "$PID" ] && kill -9 "$PID" 2>/dev/null || true
    rm -rf "$DIR"
}
trap cleanup EXIT INT TERM

fail() {
    echo "crash-resume FAILED: $1" >&2
    shift
    for f in "$@"; do
        echo "---- $f" >&2
        cat "$f" >&2 || true
    done
    exit 1
}

# Newest intact generation number at the checkpoint base (temp and .corrupt
# files carry non-numeric suffixes and drop out of the sed filter).
newest() {
    ls "$DIR"/ckpt.* 2>/dev/null | sed -n 's/.*ckpt\.\([0-9][0-9]*\)$/\1/p' | sort -n | tail -n 1
}
gens() {
    ls "$DIR"/ckpt.* 2>/dev/null | sed -n 's/.*ckpt\.[0-9][0-9]*$/x/p' | wc -l
}

"$GEN" -family gk -n 100 -m 10 -tightness 0.25 -seed 1 -o "$DIR/instance.txt"

# Phase 1: a long checkpointed run, killed without warning once at least
# three generations are durable on disk.
"$SOLVE" -p 4 -seed 7 -rounds 100000 -moves 2000 \
    -checkpoint "$DIR/ckpt" "$DIR/instance.txt" >/dev/null 2>&1 &
PID=$!
i=0
while [ "$(gens)" -lt 3 ]; do
    kill -0 "$PID" 2>/dev/null || fail "solver exited before checkpointing"
    i=$((i + 1))
    [ $i -lt 300 ] || fail "fewer than 3 checkpoint generations after 30s"
    sleep 0.1
done
kill -9 "$PID"
wait "$PID" 2>/dev/null || true
PID=""
G1=$(newest)
[ -n "$G1" ] || fail "no intact generation survived the kill"

# Phase 2: resume. The newest generation must win, and the run must end no
# worse than the best it resumed from.
OUT="$DIR/resume1.out"
ERR="$DIR/resume1.err"
"$SOLVE" -p 4 -seed 7 -rounds 100000 -moves 2000 -time 5s \
    -resume "$DIR/ckpt" -checkpoint "$DIR/ckpt" -sol "$DIR/best.sol" \
    "$DIR/instance.txt" >"$OUT" 2>"$ERR" || fail "resume run exited non-zero" "$ERR"

LINE=$(grep 'resuming at round' "$ERR") || fail "no resume line on stderr" "$ERR"
PRE=$(echo "$LINE" | sed -n 's/.*best \([0-9][0-9]*\).*/\1/p')
USED=$(echo "$LINE" | sed -n 's/.*generation \([0-9a-z]*\)).*/\1/p')
[ -n "$PRE" ] && [ -n "$USED" ] || fail "could not parse resume line: $LINE"
[ "$USED" = "$G1" ] || fail "resumed from generation $USED, newest was $G1" "$ERR"
FINAL=$(sed -n 's/^best value *\([0-9][0-9]*\).*/\1/p' "$OUT")
[ -n "$FINAL" ] || fail "no final best on stdout" "$OUT"
[ "$FINAL" -ge "$PRE" ] || fail "final best $FINAL below pre-crash best $PRE" "$OUT" "$ERR"
"$VERIFY" "$DIR/instance.txt" "$DIR/best.sol" || fail "mkpverify rejected the resumed solution"

# Phase 3: tear the newest generation. Resume must quarantine it and fall
# back to the previous one.
G2=$(newest)
truncate -s -7 "$DIR/ckpt.$G2"
ERR2="$DIR/resume2.err"
"$SOLVE" -p 4 -seed 7 -rounds 100000 -moves 2000 -time 1s \
    -resume "$DIR/ckpt" "$DIR/instance.txt" >/dev/null 2>"$ERR2" \
    || fail "corrupt-fallback resume exited non-zero" "$ERR2"
LINE2=$(grep 'resuming at round' "$ERR2") || fail "no resume line after corruption" "$ERR2"
USED2=$(echo "$LINE2" | sed -n 's/.*generation \([0-9a-z]*\)).*/\1/p')
[ -n "$USED2" ] && [ "$USED2" != "$G2" ] \
    || fail "resume did not fall back from torn generation $G2: $LINE2"
[ -f "$DIR/ckpt.$G2.corrupt" ] || fail "torn generation $G2 was not quarantined"

echo "crash-resume OK: killed at generation $G1 (best $PRE), resumed to $FINAL, torn generation $G2 fell back to $USED2"
