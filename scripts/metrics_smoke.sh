#!/bin/sh
# CI smoke for the live observability endpoint: start a solve with a /metrics
# listener, poll the exposition while the run is live, and fail on a non-200
# response or an exposition missing the move / round / farm-traffic families.
# Usage: scripts/metrics_smoke.sh [path-to-mkpsolve]
set -eu

BIN=${1:-./mkpsolve}
LOG=$(mktemp)
OUT=$(mktemp)
PID=""
cleanup() {
    [ -n "$PID" ] && kill "$PID" 2>/dev/null || true
    rm -f "$LOG" "$OUT"
}
trap cleanup EXIT INT TERM

# A run long enough that the endpoint is still live while we poll it.
"$BIN" -gen 250x10 -rounds 200 -moves 2000 -listen 127.0.0.1:0 \
    >/dev/null 2>"$LOG" &
PID=$!

# The solver announces the bound address on stderr (port 0 picks a free one).
ADDR=""
i=0
while [ $i -lt 100 ]; do
    ADDR=$(sed -n 's#.*observability on http://\([^ ]*\).*#\1#p' "$LOG" | head -n 1)
    [ -n "$ADDR" ] && break
    if ! kill -0 "$PID" 2>/dev/null; then
        echo "metrics smoke FAILED: solver exited before binding" >&2
        cat "$LOG" >&2
        exit 1
    fi
    sleep 0.1
    i=$((i + 1))
done
if [ -z "$ADDR" ]; then
    echo "metrics smoke FAILED: no listen address announced" >&2
    cat "$LOG" >&2
    exit 1
fi

# Poll until the exposition carries live counters (first rounds completed).
CODE=000
i=0
while [ $i -lt 100 ]; do
    CODE=$(curl -s -o "$OUT" -w '%{http_code}' "http://$ADDR/metrics" || echo 000)
    if [ "$CODE" = 200 ] && [ -s "$OUT" ] \
        && grep -q '^tabu_moves_total' "$OUT" \
        && grep -q '^core_rounds_total' "$OUT" \
        && grep -q '^core_result_rejects_total' "$OUT" \
        && grep -q '^core_quarantines_total' "$OUT" \
        && grep -q '^farm_messages_total' "$OUT"; then
        echo "metrics smoke OK: $(wc -l <"$OUT") exposition lines from http://$ADDR/metrics"
        exit 0
    fi
    sleep 0.1
    i=$((i + 1))
done
echo "metrics smoke FAILED: last status $CODE, exposition:" >&2
cat "$OUT" >&2
exit 1
