#!/bin/sh
# CI smoke for the hyper-heuristic portfolio over real processes: boot a
# mixed-algorithm fleet of mkpworker processes advertising their search
# algorithms, solve through them with `mkpsolve -portfolio`, and require
# (a) the run to complete and its solution to pass mkpverify, and (b) a
# second, live run to expose per-algorithm slot counts on /metrics that sum
# to the fleet size with every portfolio member holding at least one slot
# (the reallocation starvation floor, audited end to end).
# Usage: scripts/portfolio_smoke.sh [mkpsolve] [mkpworker] [mkpgen] [mkpverify]
set -eu

SOLVE=${1:-./mkpsolve}
WORKER=${2:-./mkpworker}
GEN=${3:-./mkpgen}
VERIFY=${4:-./mkpverify}
PORT="tabu,repair,assim"
WORKERS=4

DIR=$(mktemp -d)
PIDS=""
cleanup() {
    for p in $PIDS; do kill "$p" 2>/dev/null || true; done
    rm -rf "$DIR"
}
trap cleanup EXIT INT TERM

fail() {
    echo "portfolio smoke FAILED: $1" >&2
    shift
    for f in "$@"; do
        echo "---- $f" >&2
        cat "$f" >&2 || true
    done
    exit 1
}

# Boot $1 workers logging to $DIR/$2N.log and append their addresses to ADDRS.
boot_fleet() {
    count=$1
    tag=$2
    once=$3
    ADDRS=""
    i=0
    while [ $i -lt "$count" ]; do
        # shellcheck disable=SC2086
        "$WORKER" -listen 127.0.0.1:0 $once -algos "$PORT" \
            2>"$DIR/$tag$i.log" &
        PIDS="$PIDS $!"
        i=$((i + 1))
    done
    i=0
    while [ $i -lt "$count" ]; do
        j=0
        ADDR=""
        while [ $j -lt 100 ]; do
            ADDR=$(sed -n 's/^mkpworker: listening on //p' "$DIR/$tag$i.log" | head -n 1)
            [ -n "$ADDR" ] && break
            sleep 0.1
            j=$((j + 1))
        done
        [ -n "$ADDR" ] || fail "$tag worker $i never announced an address" "$DIR/$tag$i.log"
        grep -q "^mkpworker: algorithms $PORT\$" "$DIR/$tag$i.log" \
            || fail "$tag worker $i did not advertise its algorithms" "$DIR/$tag$i.log"
        ADDRS="$ADDRS,$ADDR"
        i=$((i + 1))
    done
    ADDRS=${ADDRS#,}
}

"$GEN" -family gk -n 100 -m 10 -tightness 0.25 -seed 3 -o "$DIR/instance.txt"

# Phase 1: a mixed-portfolio run over the wire fleet, to completion, and the
# solution it wrote through mkpverify.
boot_fleet $WORKERS run -once
BEST=$("$SOLVE" -workers "$ADDRS" -portfolio "$PORT" -seed 7 -rounds 8 -moves 1000 \
    -q -sol "$DIR/best.sol" "$DIR/instance.txt" 2>"$DIR/solve.log") \
    || fail "portfolio wire run failed" "$DIR/solve.log" "$DIR/run0.log"
"$VERIFY" "$DIR/instance.txt" "$DIR/best.sol" >/dev/null \
    || fail "mkpverify rejected the portfolio run's solution" "$DIR/solve.log"
for p in $PIDS; do
    wait "$p" 2>/dev/null || true
done
PIDS=""

# Phase 2: the same fleet shape kept alive under a long run with a live
# /metrics listener; audit the per-algorithm slot gauges while rounds turn.
boot_fleet $WORKERS live ""
"$SOLVE" -workers "$ADDRS" -portfolio "$PORT" -seed 7 -rounds 100000 -moves 2000 \
    -listen 127.0.0.1:0 "$DIR/instance.txt" >/dev/null 2>"$DIR/live.log" &
PIDS="$PIDS $!"

MADDR=""
i=0
while [ $i -lt 100 ]; do
    MADDR=$(sed -n 's#.*observability on http://\([^ ]*\).*#\1#p' "$DIR/live.log" | head -n 1)
    [ -n "$MADDR" ] && break
    sleep 0.1
    i=$((i + 1))
done
[ -n "$MADDR" ] || fail "no observability address announced" "$DIR/live.log"

# Poll until the slot gauges are exposed (first round completed), then check
# them: one gauge per member, together covering every slot in the fleet.
SLOTS=$DIR/slots.txt
i=0
while [ $i -lt 200 ]; do
    curl -s "http://$MADDR/metrics" 2>/dev/null \
        | sed -n 's/^core_algo_slots{algo="\([a-z]*\)"} \([0-9][0-9]*\)$/\1 \2/p' \
        >"$SLOTS" || true
    [ "$(wc -l <"$SLOTS")" -eq 3 ] && break
    sleep 0.1
    i=$((i + 1))
done
[ "$(wc -l <"$SLOTS")" -eq 3 ] \
    || fail "expected 3 core_algo_slots gauges, got: $(cat "$SLOTS")" "$DIR/live.log"

SUM=0
for a in tabu repair assim; do
    N=$(awk -v a="$a" '$1 == a { print $2 }' "$SLOTS")
    [ -n "$N" ] || fail "no core_algo_slots gauge for $a" "$SLOTS"
    [ "$N" -ge 1 ] || fail "$a starved below the one-slot floor" "$SLOTS"
    SUM=$((SUM + N))
done
[ "$SUM" -eq $WORKERS ] || fail "slot counts sum to $SUM, want $WORKERS" "$SLOTS"

echo "portfolio smoke OK: best $BEST verified over $WORKERS mixed workers; slots $(tr '\n' ' ' <"$SLOTS")sum $SUM"
