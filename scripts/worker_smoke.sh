#!/bin/sh
# CI smoke for the multi-process wire transport: boot four mkpworker
# processes on ephemeral ports, run a seeded mkpsolve against them over TCP,
# and require (a) the run to complete, (b) the solution file to pass
# mkpverify, and (c) the final best value to equal the same-seed in-process
# run — the cross-transport determinism contract, end to end over real
# sockets and real OS processes.
# Usage: scripts/worker_smoke.sh [mkpsolve] [mkpworker] [mkpgen] [mkpverify]
set -eu

SOLVE=${1:-./mkpsolve}
WORKER=${2:-./mkpworker}
GEN=${3:-./mkpgen}
VERIFY=${4:-./mkpverify}
WORKERS=4

DIR=$(mktemp -d)
PIDS=""
cleanup() {
    for p in $PIDS; do kill "$p" 2>/dev/null || true; done
    rm -rf "$DIR"
}
trap cleanup EXIT INT TERM

fail() {
    echo "worker smoke FAILED: $1" >&2
    shift
    for f in "$@"; do
        echo "---- $f" >&2
        cat "$f" >&2 || true
    done
    exit 1
}

"$GEN" -family gk -n 100 -m 10 -tightness 0.25 -seed 1 -o "$DIR/instance.txt"

# Boot the workers on ephemeral ports; each announces its bound address on
# stderr as "mkpworker: listening on HOST:PORT". -once makes them exit after
# serving one master, so a green run leaves nothing behind.
i=0
while [ $i -lt $WORKERS ]; do
    "$WORKER" -listen 127.0.0.1:0 -once 2>"$DIR/worker$i.log" &
    PIDS="$PIDS $!"
    i=$((i + 1))
done

ADDRS=""
i=0
while [ $i -lt $WORKERS ]; do
    j=0
    ADDR=""
    while [ $j -lt 100 ]; do
        ADDR=$(sed -n 's/^mkpworker: listening on //p' "$DIR/worker$i.log" | head -n 1)
        [ -n "$ADDR" ] && break
        sleep 0.1
        j=$((j + 1))
    done
    [ -n "$ADDR" ] || fail "worker $i never announced an address" "$DIR/worker$i.log"
    ADDRS="$ADDRS,$ADDR"
    i=$((i + 1))
done
ADDRS=${ADDRS#,}

# The reference value: the same seeded solve with in-process slaves.
LOCAL=$("$SOLVE" -p $WORKERS -seed 9 -rounds 6 -moves 500 -q "$DIR/instance.txt") \
    || fail "in-process reference run failed"

# The wire run: same seed, slaves as the worker processes above.
REMOTE=$("$SOLVE" -workers "$ADDRS" -seed 9 -rounds 6 -moves 500 -q \
    -sol "$DIR/best.sol" "$DIR/instance.txt" 2>"$DIR/solve.log") \
    || fail "wire run failed" "$DIR/solve.log" "$DIR/worker0.log"

[ "$REMOTE" = "$LOCAL" ] \
    || fail "wire best $REMOTE != in-process best $LOCAL" "$DIR/solve.log"

"$VERIFY" "$DIR/instance.txt" "$DIR/best.sol" >/dev/null \
    || fail "mkpverify rejected the wire run's solution" "$DIR/solve.log"

# -once workers exit on their own once the master disconnects.
for p in $PIDS; do
    wait "$p" 2>/dev/null || true
done
PIDS=""

echo "worker smoke OK: $WORKERS workers over TCP, best $REMOTE == in-process, solution verified"
