#!/bin/sh
# CI smoke for the elastic asynchronous farm, in two phases over real OS
# processes.
#
# Churn phase: one mkpsolve -elastic master and 64 real mkpworker -join
# processes — 48 steady, 8 spot-style leavers (-leave-after) that depart
# early, and 8 late joiners spawned only after the first leaver is gone. The
# run must complete, classify exactly 8 graceful leaves and 8 mid-run joins,
# and produce a solution that passes mkpverify.
#
# Scale phase: P=16/64/128 full-fleet runs under -equalwork (total moves per
# round constant, so bigger fleets do the same work split thinner). Writes
# the per-P summaries into one BENCH_elastic.json and fails if rounds/sec or
# bytes/worker/round drift more than the tolerance across the sweep — the
# membership plane must not tax the rendezvous as P grows.
# Usage: scripts/elastic_smoke.sh [mkpsolve] [mkpworker] [mkpgen] [mkpverify] [out.json]
set -eu

SOLVE=${1:-./mkpsolve}
WORKER=${2:-./mkpworker}
GEN=${3:-./mkpgen}
VERIFY=${4:-./mkpverify}
OUT=${5:-BENCH_elastic.json}
# min/max ratio both metrics must clear across the P sweep (0.8 = within 20%).
FLAT=${ELASTIC_FLATNESS:-0.8}

DIR=$(mktemp -d)
PIDS=""
cleanup() {
    for p in $PIDS; do kill "$p" 2>/dev/null || true; done
    rm -rf "$DIR"
}
trap cleanup EXIT INT TERM

fail() {
    echo "elastic smoke FAILED: $1" >&2
    shift
    for f in "$@"; do
        echo "---- $f" >&2
        cat "$f" >&2 || true
    done
    exit 1
}

# wait_addr LOG: poll LOG for the master's fleet announcement.
wait_addr() {
    k=0
    while [ $k -lt 200 ]; do
        A=$(sed -n 's/^mkpsolve: fleet listening on //p' "$1" | head -n 1)
        if [ -n "$A" ]; then
            echo "$A"
            return 0
        fi
        sleep 0.1
        k=$((k + 1))
    done
    return 1
}

"$GEN" -family gk -n 100 -m 10 -tightness 0.25 -seed 1 -o "$DIR/instance.txt"

# ---- Phase 1: churn ------------------------------------------------------
# 64-wide fleet, assembled from 56 (48 steady + 8 leavers); 8 join late.
"$SOLVE" -elastic 127.0.0.1:0 -p 64 -minworkers 56 -joingrace 120s \
    -rounds 16 -moves 64000 -equalwork -slavetimeout 60s -seed 9 -q \
    -sol "$DIR/churn.sol" -benchjson "$DIR/churn.json" \
    "$DIR/instance.txt" >"$DIR/churn.out" 2>"$DIR/churn.log" &
MASTER=$!
PIDS="$PIDS $MASTER"
ADDR=$(wait_addr "$DIR/churn.log") || fail "churn master never announced its fleet address" "$DIR/churn.log"

i=0
while [ $i -lt 48 ]; do
    "$WORKER" -join "$ADDR" -name "steady$i" 2>>"$DIR/steady.log" &
    PIDS="$PIDS $!"
    i=$((i + 1))
done
i=0
while [ $i -lt 8 ]; do
    "$WORKER" -join "$ADDR" -name "leaver$i" -leave-after 2 2>"$DIR/leaver$i.log" &
    PIDS="$PIDS $!"
    i=$((i + 1))
done

# A leaver's departure note proves the run is past round 2 and still going:
# only then are the late joiners genuinely mid-run members.
k=0
while [ $k -lt 600 ]; do
    grep -q "departed" "$DIR/leaver0.log" 2>/dev/null && break
    kill -0 "$MASTER" 2>/dev/null || fail "churn master died before any leaver departed" "$DIR/churn.log"
    sleep 0.1
    k=$((k + 1))
done
grep -q "departed" "$DIR/leaver0.log" || fail "no leaver ever departed" "$DIR/leaver0.log" "$DIR/churn.log"
i=0
while [ $i -lt 8 ]; do
    "$WORKER" -join "$ADDR" -name "late$i" 2>>"$DIR/late.log" &
    PIDS="$PIDS $!"
    i=$((i + 1))
done

wait "$MASTER" || fail "churn master failed" "$DIR/churn.log" "$DIR/steady.log"
JOINS=$(jq .joins "$DIR/churn.json")
LEAVES=$(jq .leaves "$DIR/churn.json")
[ "$LEAVES" = "8" ] || fail "churn run classified $LEAVES graceful leaves, want 8" "$DIR/churn.json" "$DIR/churn.log"
[ "$JOINS" = "8" ] || fail "churn run admitted $JOINS mid-run joins, want 8" "$DIR/churn.json" "$DIR/late.log" "$DIR/churn.log"
"$VERIFY" "$DIR/instance.txt" "$DIR/churn.sol" >/dev/null \
    || fail "mkpverify rejected the churn run's solution" "$DIR/churn.log"
echo "elastic churn OK: 64 workers, $JOINS joins, $LEAVES leaves, best $(cat "$DIR/churn.out")"

# ---- Phase 2: scale sweep ------------------------------------------------
for P in 16 64 128; do
    "$SOLVE" -elastic 127.0.0.1:0 -p "$P" -minworkers "$P" -joingrace 300s \
        -rounds 8 -moves 25600 -equalwork -slavetimeout 60s -seed 5 -q \
        -benchjson "$DIR/scale$P.json" \
        "$DIR/instance.txt" >/dev/null 2>"$DIR/scale$P.log" &
    MASTER=$!
    PIDS="$PIDS $MASTER"
    ADDR=$(wait_addr "$DIR/scale$P.log") || fail "P=$P master never announced its fleet address" "$DIR/scale$P.log"
    i=0
    while [ $i -lt "$P" ]; do
        "$WORKER" -join "$ADDR" 2>>"$DIR/scaleworkers$P.log" &
        PIDS="$PIDS $!"
        i=$((i + 1))
    done
    wait "$MASTER" || fail "P=$P scale run failed" "$DIR/scale$P.log" "$DIR/scaleworkers$P.log"
    echo "elastic scale P=$P OK: $(jq -c '{rounds, elapsed_seconds, assembled_seconds, bytes}' "$DIR/scale$P.json")"
done

# One summary file: the per-P runs plus the derived per-round rates. The
# assembly wait (process spawning, join handshakes) is excluded from the
# rate — the claim under test is about the steady-state rendezvous.
jq -s '{
    tool: "scripts/elastic_smoke.sh",
    equalwork_moves_per_round: 25600,
    phases: [ .[] | . + {
        rounds_per_sec: (.rounds / (.elapsed_seconds - .assembled_seconds)),
        bytes_per_worker_per_round: (.bytes / .p / .rounds)
    } ]
}' "$DIR/scale16.json" "$DIR/scale64.json" "$DIR/scale128.json" >"$OUT"

check_flat() { # metric name
    jq -e --arg m "$1" --argjson flat "$FLAT" \
        '[.phases[][$m]] | (min / max) >= $flat' "$OUT" >/dev/null \
        || fail "$1 drifts more than $(jq -n --argjson f "$FLAT" '100*(1-$f)')% across P=16..128: $(jq -c "[.phases[].$1]" "$OUT")" "$OUT"
}
check_flat rounds_per_sec
check_flat bytes_per_worker_per_round

echo "elastic smoke OK: $(jq -c '[.phases[] | {p, rounds_per_sec, bytes_per_worker_per_round}]' "$OUT")"
