#!/bin/sh
# CI guard for the kernel hot path: re-run the kernel microbenchmark suite on
# the committed baseline's own instance spec and fail if any optimized op
# regresses more than the tolerance against BENCH_kernel.json. Naive reference
# measurements are exempt (they exist to compute speedups, not to be
# defended). Benchmark machines are noisy, so the default tolerance is
# generous; an op that trips it has genuinely lost ground.
# Usage: scripts/bench_guard.sh [baseline.json] [tolerance]
set -eu

BASELINE=${1:-BENCH_kernel.json}
TOL=${2:-0.15}

if [ ! -f "$BASELINE" ]; then
    echo "bench guard: no baseline at $BASELINE; run 'make kernel' to create one" >&2
    exit 1
fi

go run ./cmd/mkpbench -checkkernel "$BASELINE" -kerneltol "$TOL"
