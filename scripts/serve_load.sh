#!/bin/sh
# CI harness for the job server: boot a fleet of mkpworker processes and an
# mkpserve over a durable data directory, then prove the service contract
# end to end:
#
#   phase 1 (load): 12 concurrent jobs x P=2 over a 16-worker fleet (8 jobs
#     solving simultaneously on disjoint leases). Every job must complete,
#     the p99 submit-to-first-result latency must stay under the bound, every
#     solution must pass mkpverify, and /metrics must expose each job's
#     series under its own job label.
#
#   phase 2 (durability): 8 long jobs are submitted; once every one of them
#     has durable checkpoints the server is kill -9'd mid-run, restarted over
#     the same directory, and every job must resume from its checkpoint
#     (resumed_from >= 1), run to completion, and produce a verified
#     solution.
#
# Usage: scripts/serve_load.sh [mkpserve] [mkpworker] [mkpgen] [mkpverify]
set -eu

SERVE=${1:-./mkpserve}
WORKER=${2:-./mkpworker}
GEN=${3:-./mkpgen}
VERIFY=${4:-./mkpverify}
WORKERS=16
P99_LIMIT_MS=${P99_LIMIT_MS:-20000}

DIR=$(mktemp -d)
PIDS=""
SERVER_PID=""
cleanup() {
    [ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null || true
    for p in $PIDS; do kill "$p" 2>/dev/null || true; done
    rm -rf "$DIR"
}
trap cleanup EXIT INT TERM

fail() {
    echo "serve load FAILED: $1" >&2
    shift
    for f in "$@"; do
        echo "---- $f" >&2
        cat "$f" >&2 || true
    done
    exit 1
}

# ---- fleet ----------------------------------------------------------------
i=0
while [ $i -lt $WORKERS ]; do
    "$WORKER" -listen 127.0.0.1:0 2>"$DIR/worker$i.log" &
    PIDS="$PIDS $!"
    i=$((i + 1))
done
ADDRS=""
i=0
while [ $i -lt $WORKERS ]; do
    j=0
    ADDR=""
    while [ $j -lt 100 ]; do
        ADDR=$(sed -n 's/^mkpworker: listening on //p' "$DIR/worker$i.log" | head -n 1)
        [ -n "$ADDR" ] && break
        sleep 0.1
        j=$((j + 1))
    done
    [ -n "$ADDR" ] || fail "worker $i never announced an address" "$DIR/worker$i.log"
    ADDRS="$ADDRS,$ADDR"
    i=$((i + 1))
done
ADDRS=${ADDRS#,}

# ---- server ---------------------------------------------------------------
PORT=$(python3 -c 'import socket; s=socket.socket(); s.bind(("127.0.0.1",0)); print(s.getsockname()[1]); s.close()')
BASE="http://127.0.0.1:$PORT"
start_server() {
    "$SERVE" -listen "127.0.0.1:$PORT" -dir "$DIR/data" -workers "$ADDRS" \
        -maxqueue 64 2>>"$DIR/serve.log" &
    SERVER_PID=$!
    k=0
    while ! curl -fsS "$BASE/healthz" >/dev/null 2>&1; do
        kill -0 "$SERVER_PID" 2>/dev/null || fail "server died on startup" "$DIR/serve.log"
        k=$((k + 1))
        [ $k -lt 100 ] || fail "server never became healthy" "$DIR/serve.log"
        sleep 0.1
    done
}
start_server

# ---- phase 1: concurrent load + latency -----------------------------------
python3 - "$BASE" "$DIR" "$P99_LIMIT_MS" <<'EOF' || fail "load phase failed" "$DIR/serve.log"
import json, math, sys, threading, time, urllib.request

base, outdir, limit_ms = sys.argv[1], sys.argv[2], int(sys.argv[3])
JOBS, lat, ids, errs = 12, {}, {}, []

def drive(i):
    spec = {"gen": {"n": 80, "m": 5, "seed": i}, "p": 2, "seed": i,
            "rounds": 3, "moves": 300}
    body = json.dumps(spec).encode()
    t0 = time.monotonic()
    try:
        req = urllib.request.Request(base + "/jobs", data=body,
                                     headers={"Content-Type": "application/json"})
        with urllib.request.urlopen(req, timeout=30) as r:
            jid = json.load(r)["id"]
        ids[i] = jid
        # First-result latency: the first round event on the stream.
        with urllib.request.urlopen(base + f"/jobs/{jid}/events", timeout=120) as r:
            for line in r:
                e = json.loads(line)
                if e["kind"] == "round":
                    lat[i] = (time.monotonic() - t0) * 1000
                    break
            else:
                raise RuntimeError(f"job {jid}: stream ended with no round event")
    except Exception as exc:
        errs.append(f"job {i}: {exc}")

threads = [threading.Thread(target=drive, args=(i,)) for i in range(1, JOBS + 1)]
for t in threads: t.start()
for t in threads: t.join()
if errs:
    sys.exit("\n".join(errs))

# Wait for completion and save solutions.
deadline = time.monotonic() + 120
for i, jid in ids.items():
    while True:
        with urllib.request.urlopen(base + f"/jobs/{jid}") as r:
            st = json.load(r)
        if st["state"] == "done":
            break
        if st["state"] == "failed":
            sys.exit(f"job {jid} failed: {st.get('error')}")
        if time.monotonic() > deadline:
            sys.exit(f"job {jid} stuck in {st['state']}")
        time.sleep(0.1)
    with urllib.request.urlopen(base + f"/jobs/{jid}/solution") as r:
        open(f"{outdir}/load{i}.sol", "wb").write(r.read())

samples = sorted(lat.values())
p99 = samples[max(0, math.ceil(0.99 * len(samples)) - 1)]
print(f"serve load: {JOBS} jobs done, submit-to-first-result "
      f"p50={samples[len(samples)//2]:.0f}ms p99={p99:.0f}ms")
if p99 > limit_ms:
    sys.exit(f"p99 {p99:.0f}ms exceeds the {limit_ms}ms bound")

# The merged exposition must carry each job's series under its own label.
with urllib.request.urlopen(base + "/metrics") as r:
    expo = r.read().decode()
for jid in ids.values():
    if f'core_rounds_total{{job="{jid}"}}' not in expo:
        sys.exit(f"/metrics lacks job {jid} series")
EOF

# Verify every phase-1 solution against the regenerated instance.
i=1
while [ $i -le 12 ]; do
    "$GEN" -family gk -n 80 -m 5 -tightness 0.25 -seed $i -o "$DIR/load$i.txt"
    "$VERIFY" "$DIR/load$i.txt" "$DIR/load$i.sol" >/dev/null \
        || fail "phase-1 job $i solution does not verify"
    i=$((i + 1))
done

# ---- phase 2: kill -9 mid-run, restart, resume ----------------------------
python3 - "$BASE" "$DIR" <<'EOF' || fail "phase-2 submit failed" "$DIR/serve.log"
import json, sys, time, urllib.request
base, outdir = sys.argv[1], sys.argv[2]
ids = []
for i in range(1, 9):
    spec = {"id": f"durable{i}", "gen": {"n": 120, "m": 5, "seed": 100 + i},
            "p": 2, "seed": 100 + i, "rounds": 200, "moves": 1500}
    req = urllib.request.Request(base + "/jobs", data=json.dumps(spec).encode(),
                                 headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(req, timeout=30) as r:
        ids.append(json.load(r)["id"])
# Hold until every job has at least two durable checkpoint rounds and none
# finished (the kill must land mid-run for all of them).
deadline = time.monotonic() + 120
while True:
    rounds = {}
    for jid in ids:
        with urllib.request.urlopen(base + f"/jobs/{jid}") as r:
            st = json.load(r)
        if st["state"] in ("done", "failed"):
            sys.exit(f"job {jid} ended ({st['state']}) before the kill")
        rounds[jid] = st["round"]
    if all(v >= 2 for v in rounds.values()):
        break
    if time.monotonic() > deadline:
        sys.exit(f"jobs never all reached round 2: {rounds}")
    time.sleep(0.2)
print("serve load: all 8 durable jobs mid-run with checkpoints, killing server")
EOF

kill -9 "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""
sleep 0.5
start_server

python3 - "$BASE" "$DIR" <<'EOF' || fail "phase-2 resume failed" "$DIR/serve.log"
import json, sys, time, urllib.request
base, outdir = sys.argv[1], sys.argv[2]
ids = [f"durable{i}" for i in range(1, 9)]
deadline = time.monotonic() + 600
for jid in ids:
    while True:
        with urllib.request.urlopen(base + f"/jobs/{jid}") as r:
            st = json.load(r)
        if st["state"] == "done":
            break
        if st["state"] == "failed":
            sys.exit(f"job {jid} failed after restart: {st.get('error')}")
        if time.monotonic() > deadline:
            sys.exit(f"job {jid} stuck in {st['state']} after restart")
        time.sleep(0.2)
    if st.get("resumed_from", 0) < 1:
        sys.exit(f"job {jid} did not resume from a checkpoint: {st}")
    if st["round"] < 200:
        sys.exit(f"job {jid} done at round {st['round']}, want 200")
    with urllib.request.urlopen(base + f"/jobs/{jid}/solution") as r:
        open(f"{outdir}/{jid}.sol", "wb").write(r.read())
print("serve load: all 8 jobs resumed from checkpoints and completed")
EOF

i=1
while [ $i -le 8 ]; do
    "$GEN" -family gk -n 120 -m 5 -tightness 0.25 -seed $((100 + i)) -o "$DIR/durable$i.txt"
    "$VERIFY" "$DIR/durable$i.txt" "$DIR/durable$i.sol" >/dev/null \
        || fail "durable job $i solution does not verify"
    i=$((i + 1))
done

echo "serve load OK: 12 concurrent jobs under the latency bound, 8 jobs kill -9'd, resumed and verified"
