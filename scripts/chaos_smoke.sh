#!/bin/sh
# CI smoke for the network chaos layer and the untrusted-result hardening:
# an elastic mkpsolve master runs under a seeded schedule of byte corruption,
# connection resets and partition windows, served by 8 real mkpworker
# processes — 7 honest ones that rejoin when chaos kills their link, and one
# -forge worker that answers every round with a forged result. Requirements:
# (a) the run completes and its solution passes mkpverify, (b) the live
# /metrics exposition carries the core_result_rejects_total and
# core_quarantines_total families, (c) the final report shows the forger
# was rejected and quarantined, and (d) a zero-plan chaos run is bitwise
# equal to the plain wire run at the same seed.
# Usage: scripts/chaos_smoke.sh [mkpsolve] [mkpworker] [mkpgen] [mkpverify]
set -eu

SOLVE=${1:-./mkpsolve}
WORKER=${2:-./mkpworker}
GEN=${3:-./mkpgen}
VERIFY=${4:-./mkpverify}
HONEST=7

DIR=$(mktemp -d)
PIDS=""
cleanup() {
    for p in $PIDS; do kill "$p" 2>/dev/null || true; done
    rm -rf "$DIR"
}
trap cleanup EXIT INT TERM

fail() {
    echo "chaos smoke FAILED: $1" >&2
    shift
    for f in "$@"; do
        echo "---- $f" >&2
        cat "$f" >&2 || true
    done
    exit 1
}

# await_line FILE SED_PATTERN DESC: poll FILE until the sed extraction
# yields a non-empty line, echo it.
await_line() {
    i=0
    while [ $i -lt 100 ]; do
        LINE=$(sed -n "$2" "$1" | head -n 1)
        if [ -n "$LINE" ]; then
            echo "$LINE"
            return 0
        fi
        sleep 0.1
        i=$((i + 1))
    done
    fail "$3 never announced" "$1"
}

"$GEN" -family gk -n 100 -m 10 -tightness 0.25 -seed 1 -o "$DIR/instance.txt"

# --- The chaos battery: corruption + resets + partitions + a forger. -------
"$SOLVE" -elastic 127.0.0.1:0 -p 8 -minworkers 8 -joingrace 60s \
    -rounds 8 -moves 500 -seed 9 -slavetimeout 2s \
    -chaos 7 -chaos-corrupt 0.05 -chaos-reset 0.02 \
    -chaos-partition '0@300ms+500ms,3@600ms+400ms' \
    -listen 127.0.0.1:0 -sol "$DIR/best.sol" "$DIR/instance.txt" \
    >"$DIR/solve.out" 2>"$DIR/solve.err" &
MASTER=$!
PIDS="$PIDS $MASTER"

FLEET=$(await_line "$DIR/solve.err" 's/^mkpsolve: fleet listening on //p' "fleet address")
OBS=$(await_line "$DIR/solve.err" 's#.*observability on http://\([^ ]*\).*#\1#p' "observability address")

# The hardening counter families must be registered (zero-valued) from the
# start — the metrics audit for the quarantine path.
MET=$(curl -s "http://$OBS/metrics" || true)
echo "$MET" | grep -q '^core_result_rejects_total' \
    || fail "core_result_rejects_total missing from /metrics" "$DIR/solve.err"
echo "$MET" | grep -q '^core_quarantines_total' \
    || fail "core_quarantines_total missing from /metrics" "$DIR/solve.err"

i=0
while [ $i -lt $HONEST ]; do
    "$WORKER" -join "$FLEET" -name "honest$i" -rejoin 2>"$DIR/worker$i.log" &
    PIDS="$PIDS $!"
    i=$((i + 1))
done
"$WORKER" -join "$FLEET" -name evil -forge -rejoin 2>"$DIR/forger.log" &
PIDS="$PIDS $!"

wait "$MASTER" || fail "chaos run failed" "$DIR/solve.err" "$DIR/forger.log"

"$VERIFY" "$DIR/instance.txt" "$DIR/best.sol" >/dev/null \
    || fail "mkpverify rejected the chaos run's solution" "$DIR/solve.out"

# The forger must have been struck and quarantined; honest corruption surfaces
# as CRC frame errors, never as rejects, so every reject is the forger's.
REJECTS=$(sed -n 's/^hardening  \([0-9]*\) results rejected by revalidation, \([0-9]*\) workers quarantined$/\1/p' "$DIR/solve.out")
QUARS=$(sed -n 's/^hardening  \([0-9]*\) results rejected by revalidation, \([0-9]*\) workers quarantined$/\2/p' "$DIR/solve.out")
[ -n "$REJECTS" ] && [ "$REJECTS" -ge 3 ] \
    || fail "expected >=3 revalidation rejects, report says '${REJECTS:-none}'" "$DIR/solve.out" "$DIR/forger.log"
[ -n "$QUARS" ] && [ "$QUARS" -ge 1 ] \
    || fail "forger never quarantined" "$DIR/solve.out" "$DIR/forger.log"

# Rejoining workers exit once the master is gone for good.
for p in $PIDS; do
    [ "$p" = "$MASTER" ] || kill "$p" 2>/dev/null || true
done
PIDS=""

# --- Zero-plan equivalence: an inert chaos wrapper must change nothing. ----
boot_workers() {
    WPIDS=""
    ADDRS=""
    i=0
    while [ $i -lt 4 ]; do
        "$WORKER" -listen 127.0.0.1:0 -once 2>"$DIR/static$i.log" &
        WPIDS="$WPIDS $!"
        ADDR=$(await_line "$DIR/static$i.log" 's/^mkpworker: listening on //p' "static worker $i")
        ADDRS="$ADDRS,$ADDR"
        i=$((i + 1))
    done
    ADDRS=${ADDRS#,}
}

boot_workers
PIDS="$PIDS $WPIDS"
PLAIN=$("$SOLVE" -workers "$ADDRS" -seed 9 -rounds 6 -moves 500 -q "$DIR/instance.txt") \
    || fail "plain wire run failed"

boot_workers
PIDS="$PIDS $WPIDS"
INERT=$("$SOLVE" -workers "$ADDRS" -seed 9 -rounds 6 -moves 500 -q -chaos 99 "$DIR/instance.txt") \
    || fail "inert-chaos wire run failed"

[ "$INERT" = "$PLAIN" ] \
    || fail "inert chaos best $INERT != plain wire best $PLAIN"

echo "chaos smoke OK: run survived corruption/resets/partitions, $REJECTS forged results rejected, $QUARS quarantined, zero-plan equal ($PLAIN)"
