package pts_test

import (
	"testing"

	pts "repro"
)

func TestFacadeReduction(t *testing.T) {
	ins := pts.GenerateUncorrelated("red", 40, 3, 0.5, 3)
	inc := pts.Greedy(ins)
	fix, err := pts.FixVariables(ins, inc.Value, 1)
	if err != nil {
		t.Fatal(err)
	}
	if fix.Remaining() > ins.N {
		t.Fatalf("Remaining %d > N %d", fix.Remaining(), ins.N)
	}
	red, mapping, locked, ok := pts.ApplyFixing(ins, fix)
	if ok {
		if red.N != fix.Remaining() || len(mapping) != red.N {
			t.Fatalf("reduced shape wrong: N=%d mapping=%d remaining=%d", red.N, len(mapping), fix.Remaining())
		}
		if locked < 0 {
			t.Fatalf("negative locked profit %v", locked)
		}
	}
}

func TestFacadeExactReducedMatchesExact(t *testing.T) {
	ins := pts.GenerateGK("redx", 25, 3, 0.25, 4)
	plain, err := pts.SolveExact(ins, pts.ExactOptions{Epsilon: 0.999})
	if err != nil {
		t.Fatal(err)
	}
	red, err := pts.SolveExactReduced(ins, pts.ExactOptions{Epsilon: 0.999})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Solution.Value != red.Solution.Value {
		t.Fatalf("reduced %v != plain %v", red.Solution.Value, plain.Solution.Value)
	}
}

func TestFacadeParallelExact(t *testing.T) {
	ins := pts.GenerateGK("pex", 30, 3, 0.25, 7)
	seq, err := pts.SolveExact(ins, pts.ExactOptions{Epsilon: 0.999})
	if err != nil {
		t.Fatal(err)
	}
	par, err := pts.SolveExactParallel(ins, pts.ParallelExactOptions{
		Options: pts.ExactOptions{Epsilon: 0.999}, Workers: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if par.Solution.Value != seq.Solution.Value {
		t.Fatalf("parallel %v != sequential %v", par.Solution.Value, seq.Solution.Value)
	}
}
