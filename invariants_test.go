package pts_test

import (
	"math"
	"testing"
	"testing/quick"

	pts "repro"
)

// TestDifferentialSolverChain cross-checks every solver in the repository on
// the same instances: for small problems with certified optima,
//
//	greedy <= each heuristic <= optimum <= LP bound
//
// and the exact solvers (plain, presolved) agree. This is the integration
// net that catches a subtly wrong bound, move, or lift anywhere in the
// stack.
func TestDifferentialSolverChain(t *testing.T) {
	for trial := 0; trial < 6; trial++ {
		seed := uint64(trial)*31 + 1
		ins := pts.GenerateGK("diff", 18, 3, 0.3, seed)

		exactRes, err := pts.SolveExact(ins, pts.ExactOptions{Epsilon: 0.999})
		if err != nil {
			t.Fatal(err)
		}
		if !exactRes.Optimal {
			t.Fatalf("trial %d: 18-item exact solve not optimal", trial)
		}
		opt := exactRes.Solution.Value

		reduced, err := pts.SolveExactReduced(ins, pts.ExactOptions{Epsilon: 0.999})
		if err != nil {
			t.Fatal(err)
		}
		if reduced.Solution.Value != opt {
			t.Fatalf("trial %d: presolved exact %v != %v", trial, reduced.Solution.Value, opt)
		}

		ub, err := pts.LPBound(ins)
		if err != nil {
			t.Fatal(err)
		}
		if ub < opt-1e-9 {
			t.Fatalf("trial %d: LP bound %v below optimum %v", trial, ub, opt)
		}

		greedy := pts.Greedy(ins).Value

		heuristics := map[string]float64{}
		if r, err := pts.SearchSequential(ins, pts.DefaultParams(ins.N), 2000, seed); err == nil {
			heuristics["tabu"] = r.Best.Value
		} else {
			t.Fatal(err)
		}
		if r, err := pts.SolveCETS(ins, pts.CETSOptions{Seed: seed, Budget: 8000}); err == nil {
			heuristics["cets"] = r.Best.Value
		} else {
			t.Fatal(err)
		}
		if r, err := pts.Solve(ins, pts.CTS2, pts.Options{P: 4, Seed: seed, Rounds: 8, RoundMoves: 800, Target: opt}); err == nil {
			heuristics["cts2"] = r.Best.Value
		} else {
			t.Fatal(err)
		}
		if r, err := pts.SolveLowLevel(ins, pts.LowLevelOptions{Workers: 2, Seed: seed, Moves: 2000}); err == nil {
			heuristics["lowlevel"] = r.Best.Value
		} else {
			t.Fatal(err)
		}
		if r, err := pts.SolveAsync(ins, pts.AsyncOptions{P: 3, Seed: seed, TotalMoves: 1200, ChunkMoves: 300}); err == nil {
			heuristics["async"] = r.Best.Value
		} else {
			t.Fatal(err)
		}

		for name, v := range heuristics {
			if v > opt+1e-9 {
				t.Fatalf("trial %d: %s value %v beats the certified optimum %v", trial, name, v, opt)
			}
			if name != "lowlevel" && name != "cets" && v < greedy-1e-9 {
				// The tabu-based searches start from (or re-derive) the
				// greedy solution, so they can never end below it.
				t.Fatalf("trial %d: %s value %v below greedy %v", trial, name, v, greedy)
			}
		}
		// CTS2 on an 18-item instance with this budget should find the
		// optimum essentially always.
		if heuristics["cts2"] < opt {
			t.Errorf("trial %d: CTS2 %v missed the optimum %v", trial, heuristics["cts2"], opt)
		}
	}
}

// TestQuickBoundSandwich drives random instances through the bound chain:
// every heuristic value fits between 0 and the LP bound.
func TestQuickBoundSandwich(t *testing.T) {
	f := func(seed uint64) bool {
		ins := pts.GenerateFP("q", int(seed%30)+5, int(seed%7)+1, seed)
		res, err := pts.SearchSequential(ins, pts.DefaultParams(ins.N), 300, seed)
		if err != nil {
			return false
		}
		ub, err := pts.LPBound(ins)
		if err != nil {
			return false
		}
		return res.Best.Value >= 0 && res.Best.Value <= ub+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestDeterminismAcrossSolvers re-runs each deterministic entry point twice.
func TestDeterminismAcrossSolvers(t *testing.T) {
	ins := pts.GenerateGK("det", 35, 4, 0.25, 9)
	run := func() []float64 {
		var out []float64
		r1, err := pts.SearchSequential(ins, pts.DefaultParams(ins.N), 600, 4)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, r1.Best.Value)
		r2, err := pts.Solve(ins, pts.CTS2, pts.Options{P: 3, Seed: 4, Rounds: 3, RoundMoves: 200})
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, r2.Best.Value)
		r3, err := pts.SolveCETS(ins, pts.CETSOptions{Seed: 4, Budget: 2000})
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, r3.Best.Value)
		r4, err := pts.SolveLowLevel(ins, pts.LowLevelOptions{Workers: 3, Seed: 4, Moves: 600})
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, r4.Best.Value)
		return out
	}
	a, b := run(), run()
	for i := range a {
		if math.Abs(a[i]-b[i]) > 0 {
			t.Fatalf("solver %d nondeterministic: %v vs %v", i, a[i], b[i])
		}
	}
}
